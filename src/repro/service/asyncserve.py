"""Asyncio front door: many clients, micro-batched planning, overlapped solves.

The synchronous ``repro serve`` loop handles one JSON line at a time, so the
service's cross-request machinery (batch-wide dedup, ``GroupCoalescer``)
never sees two clients at once. This module rebuilds the front door on
asyncio:

* **Concurrent parsing** — every connection (TCP) or the stdin pipe feeds
  request lines into one queue as they arrive; protocol errors answer
  immediately without touching the compile path.
* **Micro-batching** — a batcher task collects requests for a short
  *planning window* (``window_s``, default 25 ms) or until ``max_batch``
  and submits them as one :meth:`~repro.service.service.CompileService.
  submit_batch` call: requests that arrive together dedupe against each
  other at the planner, exactly like a ``repro batch`` workload list.
* **Overlap** — each batch runs in a worker thread
  (``loop.run_in_executor``), so the event loop keeps parsing and the next
  window keeps filling while prior solves are still running. Up to
  ``max_inflight`` batches execute concurrently; concurrent batches racing
  for the same key coalesce through the service's shared
  :class:`~repro.service.executor.GroupCoalescer` — one solve, every
  waiter reuses the record.
* **Out-of-order responses** — whichever batch finishes first answers
  first. Responses are correlated by request id (auto-assigned when the
  client sent none) and stamped with the batch sequence number; see
  :mod:`repro.service.protocol`.
* **Admission control** — the planning queue is bounded (``--max-queue``):
  a request arriving while ``max_queue`` compiles are already waiting is
  refused with a typed ``overloaded`` response carrying a drain-time
  ``retry_after_s`` hint (batch-wall EWMA × batches ahead, scaled up when
  the remote fabric reports a deep part queue), instead of buffering
  without bound until the planner OOMs. Sheds are counted here
  (``n_shed``, ``schedule.shed``) and reported to the solve backend's
  ``note_shed`` when it has one, so the fabric ``stats`` verb and the
  auditor's ``elevated_load_shedding`` check see admission pressure.
* **Per-client fairness** — pending requests queue per client and window
  assembly round-robins one request per client per pass, so one client
  flooding the socket cannot starve another's single request out of
  every batch (and shed pressure lands on the flooder, whose backlog is
  what fills the bounded queue).

Queue time is recorded per request under ``serve.queue_wait`` (the window
plus any backpressure from ``max_inflight``), batch sizes under
``serve.batch_requests`` — both visible in ``repro perf``-style reports
via the server's :class:`~repro.perf.instrument.PerfRecorder`.

Deadlock note: the executor pool has exactly ``max_inflight`` threads and
batch *assembly* is gated by a semaphore of the same size (a batch is
only taken out of the admission queue when a slot is free), so every
batch that holds coalescer claims is guaranteed a running thread — a
waiter can always be outwaited by its owner, never by a queue slot.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import IO, Deque, Dict, List, Optional

from repro.circuits.circuit import Circuit
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.service.protocol import (
    CompileRequest,
    ProtocolError,
    assign_request_id,
    encode,
    error_response,
    overloaded_response,
    parse_request,
    request_circuit,
    response_for,
)
from repro.service.service import CompileService


class _Client:
    """One response sink (a TCP connection or the stdout pipe).

    Serializes writes with a lock so two finishing batches cannot
    interleave halves of a line, and swallows writes to a peer that
    already disconnected (its requests may still be in a running batch).
    """

    def __init__(self, writer: Optional[asyncio.StreamWriter], stdout: Optional[IO[str]] = None):
        self._writer = writer
        self._stdout = stdout
        self._lock = asyncio.Lock()

    async def send(self, payload: dict) -> None:
        line = encode(payload)
        async with self._lock:
            if self._writer is not None:
                if self._writer.is_closing():
                    return
                try:
                    self._writer.write(line.encode() + b"\n")
                    await self._writer.drain()
                except (ConnectionError, RuntimeError):
                    return
            else:
                print(line, file=self._stdout, flush=True)


def _salvage_request_id(line: str) -> str:
    """The ``id`` of a rejected line, when the JSON was readable enough."""
    try:
        raw = json.loads(line)
    except ValueError:
        return ""
    if isinstance(raw, dict) and raw.get("id"):
        return str(raw["id"])
    return ""


@dataclass
class _Pending:
    """One compile request waiting for (or riding in) a batch."""

    request: CompileRequest
    circuit: Circuit
    client: _Client
    enqueued_at: float = field(default=0.0)


class AsyncCompileServer:
    """Micro-batching asyncio server around one :class:`CompileService`."""

    def __init__(
        self,
        service: CompileService,
        window_s: float = 0.025,
        max_batch: int = 16,
        max_inflight: int = 2,
        max_queue: Optional[int] = None,
        perf: Optional[PerfRecorder] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        self.service = service
        self.window_s = max(0.0, float(window_s))
        self.max_batch = int(max_batch)
        self.max_inflight = int(max_inflight)
        self.max_queue = None if max_queue is None else int(max_queue)
        self.perf = recorder_or_null(perf)
        self.n_batches = 0
        self.n_requests = 0
        self.n_shed = 0  # admission refusals (typed overloaded responses)
        self.stopping = asyncio.Event()
        # Pending compiles queue *per client*; window assembly round-robins
        # across clients so a flooder cannot starve a light client.
        self._pending_by_client: Dict[_Client, Deque[_Pending]] = {}
        self._client_rr: Deque[_Client] = deque()
        self._pending_count = 0
        self._have_work = asyncio.Event()
        self._batch_wall_ewma: Optional[float] = None  # retry-after basis
        self._sem = asyncio.Semaphore(self.max_inflight)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="repro-batch"
        )
        self._batcher: Optional[asyncio.Task] = None
        self._batch_tasks: set = set()
        self._next_id = 0
        self._outstanding = 0  # enqueued compile requests not yet answered
        self._connections: set = set()  # live TCP writers, closed on shutdown

    # -------------------------------------------------------------- intake
    async def handle_line(self, line: str, client: _Client) -> None:
        """Parse one request line; commands answer inline, compiles enqueue."""
        line = line.strip()
        if not line:
            return
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            # The error response must stay correlatable for a client
            # reading out-of-order responses: echo the id the bad line
            # carried if it was readable at all, else assign a server id
            # (an empty id would be attributable to no request).
            request_id = _salvage_request_id(line)
            if not request_id:
                self._next_id += 1
                request_id = f"auto{self._next_id}"
            await client.send(error_response(request_id, str(exc)))
            return
        if request.is_command:
            await self._handle_command(request, client)
            return
        if not request.id:
            # Bump only when an id is actually assigned, so auto-id
            # numbering is dense and matches the auto-assigned count.
            self._next_id += 1
            assign_request_id(request, self._next_id)
        if (
            self.max_queue is not None
            and self._pending_count >= self.max_queue
        ):
            # Admission control: refuse *before* circuit construction —
            # a shed must stay cheap or shedding itself becomes the
            # bottleneck under exactly the flood it exists for.
            self.n_shed += 1
            self.perf.count("schedule.shed")
            note_shed = getattr(self.service.backend, "note_shed", None)
            if callable(note_shed):
                note_shed()  # fabric stats / audit see admission pressure
            await client.send(
                overloaded_response(
                    request.id,
                    self._retry_after(),
                    queued=self._pending_count,
                )
            )
            return
        try:
            circuit = request_circuit(request)
        except Exception as exc:  # bad program name / malformed QASM
            await client.send(
                error_response(request.id, f"{type(exc).__name__}: {exc}")
            )
            return
        self.n_requests += 1
        self._outstanding += 1
        pending = _Pending(
            request=request,
            circuit=circuit,
            client=client,
            enqueued_at=self.perf.now(),
        )
        lane = self._pending_by_client.get(client)
        if lane is None:
            lane = self._pending_by_client[client] = deque()
        if client not in self._client_rr:
            self._client_rr.append(client)
        lane.append(pending)
        self._pending_count += 1
        self._have_work.set()

    def stats_payload(self) -> dict:
        """The server-side counter snapshot: the ``stats`` command's body
        and the ``final_stats`` line a terminating TCP server emits — one
        shape, so a load harness can diff mid-run and closing snapshots."""
        return {
            "store": self.service.store.stats.to_dict(),
            "store_shards": self.service.store.stats_by_shard(),
            "entries": len(self.service.store),
            "batches": self.service.n_batches,
            "served_batches": self.n_batches,
            "served_requests": self.n_requests,
            "queued": self._pending_count,
            "shed": self.n_shed,
            "max_queue": self.max_queue,
            "coalesced": self.service.coalescer.coalesced,
        }

    def _retry_after(self) -> float:
        """Drain-time estimate for a shed client: batches ahead of it times
        the batch-wall EWMA, divided across concurrent batch slots — then
        scaled up when the remote fabric reports queued parts beyond its
        reservation capacity (solves will stack behind them)."""
        wall = self._batch_wall_ewma
        if wall is None:
            wall = max(self.window_s, 0.05)  # nothing measured yet
        batches_ahead = max(
            1, math.ceil(self._pending_count / self.max_batch)
        )
        hint = batches_ahead * wall / self.max_inflight
        stats = getattr(self.service.backend, "stats", None)
        if callable(stats):
            try:
                fabric = stats()
                capacity = max(
                    1,
                    fabric.get("workers_connected", 0)
                    * fabric.get("parts_per_worker", 1),
                )
                hint *= 1.0 + fabric.get("parts_queued", 0) / capacity
            except Exception:
                pass  # a sick fabric must not break shedding
        return hint

    async def _handle_command(self, request: CompileRequest, client: _Client) -> None:
        if request.cmd in ("quit", "shutdown"):
            await client.send({"id": request.id, "ok": True, "bye": True})
            if request.cmd == "shutdown":
                self.stopping.set()
            raise ConnectionResetError("client quit")  # unwinds this connection
        if request.cmd == "stats":
            await client.send(
                {"id": request.id, "ok": True, **self.stats_payload()}
            )
            return
        await client.send(
            error_response(request.id, f"unknown cmd {request.cmd!r}")
        )

    # ------------------------------------------------------------- batching
    def _assemble(self, limit: int) -> List[_Pending]:
        """Take up to ``limit`` pending requests, one per client per pass
        (round-robin), so every client with work is represented in the
        window before any client gets a second slot."""
        batch: List[_Pending] = []
        while len(batch) < limit and self._client_rr:
            client = self._client_rr.popleft()
            lane = self._pending_by_client.get(client)
            if not lane:
                self._pending_by_client.pop(client, None)
                continue
            batch.append(lane.popleft())
            self._pending_count -= 1
            if lane:
                self._client_rr.append(client)
            else:
                self._pending_by_client.pop(client, None)
        return batch

    async def _batch_loop(self) -> None:
        """Collect → dispatch forever; assembly is gated on a free batch
        slot. Holding the slot *before* assembling matters for admission
        control: while ``max_inflight`` batches run, arrivals stay in the
        per-client lanes where ``_pending_count`` (and so ``max_queue``)
        can see them — assembled-but-parked batches would hide the
        backlog from the shed check."""
        loop = asyncio.get_running_loop()
        while True:
            await self._have_work.wait()
            await self._sem.acquire()
            deadline = loop.time() + self.window_s
            while self._pending_count < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                # Bounded naps instead of one long sleep: a burst that
                # fills the window early dispatches without waiting it out.
                await asyncio.sleep(min(0.005, max(remaining, 0.0)))
            batch = self._assemble(self.max_batch)
            if self._pending_count == 0:
                self._have_work.clear()
            if not batch:
                self._sem.release()
                continue
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: List[_Pending]) -> None:
        """Run one assembled batch; the caller hands over its batch slot
        (the semaphore `_batch_loop` acquired) and it is released here."""
        loop = asyncio.get_running_loop()
        try:
            for pending in batch:
                self.perf.record_since("serve.queue_wait", pending.enqueued_at)
            self.perf.count("serve.batch_requests", len(batch))
            circuits = [p.circuit for p in batch]
            try:
                report = await loop.run_in_executor(
                    self._pool, self.service.submit_batch, circuits
                )
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                for pending in batch:
                    await pending.client.send(
                        error_response(pending.request.id, message)
                    )
                return
            else:
                self.n_batches += 1
                # Batch-wall EWMA feeds the shed response's retry-after
                # hint; alpha 0.3 smooths over per-batch size variance.
                wall = float(report.wall_time)
                if self._batch_wall_ewma is None:
                    self._batch_wall_ewma = wall
                else:
                    self._batch_wall_ewma = (
                        0.3 * wall + 0.7 * self._batch_wall_ewma
                    )
                for pending, request_report in zip(batch, report.requests):
                    payload = response_for(
                        pending.request, request_report, report
                    )
                    payload["batch"] = self.n_batches
                    await pending.client.send(payload)
            finally:
                self._outstanding -= len(batch)
        finally:
            self._sem.release()

    # ------------------------------------------------------------ lifecycle
    def _ensure_batcher(self) -> None:
        if self._batcher is None or self._batcher.done():
            self._batcher = asyncio.create_task(self._batch_loop())

    async def drain(self) -> None:
        """Wait until every enqueued request has been answered."""
        while self._outstanding > 0:
            if self._batch_tasks:
                await asyncio.gather(
                    *list(self._batch_tasks), return_exceptions=True
                )
            else:
                await asyncio.sleep(0.005)  # batcher still inside its window

    def hang_up(self) -> None:
        """Close every live client connection (server-initiated shutdown).

        Needed before awaiting the TCP server's ``wait_closed``: from
        Python 3.12.1 it waits for every connection handler, so a client
        parked in ``readline`` would block shutdown forever.
        """
        for writer in list(self._connections):
            if not writer.is_closing():
                writer.close()

    async def close(self) -> None:
        await self.drain()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        self._pool.shutdown(wait=True)
        # Persist read-recency bumps, same contract as the sync serve loop.
        self.service.store.flush()

    # ------------------------------------------------------------ frontends
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """`asyncio.start_server` callback: one task per TCP client."""
        self._ensure_batcher()
        self._connections.add(writer)
        client = _Client(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self.handle_line(line.decode(errors="replace"), client)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # disconnect mid-line; in-flight batches still run
        finally:
            self._connections.discard(writer)
            if not writer.is_closing():
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def start_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        self._ensure_batcher()
        return await asyncio.start_server(self.handle_connection, host, port)

    async def serve_stdio(
        self,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
    ) -> int:
        """Async loop over stdin/stdout; returns when stdin closes or quit.

        Lines are read in a side thread (portable — no pipe-transport
        support needed), everything else runs on the event loop, so a
        pipeline of requests written at once is parsed concurrently and
        batched exactly like TCP traffic.
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        self._ensure_batcher()
        client = _Client(None, stdout=stdout)
        loop = asyncio.get_running_loop()
        with ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-stdin") as readers:
            try:
                while not self.stopping.is_set():
                    line = await loop.run_in_executor(readers, stdin.readline)
                    if not line:
                        break
                    await self.handle_line(line, client)
            except ConnectionResetError:
                pass  # quit/shutdown command
        await self.close()
        return 0


def _install_stop_signals(server: AsyncCompileServer) -> None:
    """SIGTERM/SIGINT request the same graceful stop as ``{"cmd":
    "shutdown"}``: drain, flush, report. CI supervisors and the load
    harness tear servers down with SIGTERM, so a default-action death
    there would lose the final flush and the closing stats snapshot.
    Best-effort: event-loop signal handlers are a Unix feature."""
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.stopping.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-Unix loop or non-main thread: keep default handling


async def _amain_tcp(server: AsyncCompileServer, host: str, port: int) -> int:
    tcp = await server.start_tcp(host, port)
    _install_stop_signals(server)
    bound = tcp.sockets[0].getsockname()
    # Announce the bound address (port 0 resolves here) for scripted clients.
    print(json.dumps({"serving": f"{bound[0]}:{bound[1]}"}), flush=True)
    async with tcp:
        await server.stopping.wait()
        await server.drain()  # answer everything enqueued before the stop
        server.hang_up()
    await server.close()
    # The closing snapshot, after every batch drained and the store
    # flushed: whether stopped by the shutdown command, SIGTERM, or
    # SIGINT, a scripted supervisor always gets the final counters.
    print(
        json.dumps({"final_stats": server.stats_payload()}, sort_keys=True),
        flush=True,
    )
    return 0


def run_server(
    service: CompileService,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    window_s: float = 0.025,
    max_batch: int = 16,
    max_inflight: int = 2,
    max_queue: Optional[int] = None,
    perf: Optional[PerfRecorder] = None,
) -> int:
    """Blocking entry point for ``repro serve --async``.

    ``port=None`` serves stdin/stdout; otherwise a TCP listener on
    ``host:port`` (``port=0`` picks a free port and announces it as the
    first stdout line).
    """

    async def _amain() -> int:
        server = AsyncCompileServer(
            service,
            window_s=window_s,
            max_batch=max_batch,
            max_inflight=max_inflight,
            max_queue=max_queue,
            perf=perf,
        )
        if port is None:
            return await server.serve_stdio()
        return await _amain_tcp(server, host, port)

    return asyncio.run(_amain())
