"""Asyncio front door: many clients, micro-batched planning, overlapped solves.

The synchronous ``repro serve`` loop handles one JSON line at a time, so the
service's cross-request machinery (batch-wide dedup, ``GroupCoalescer``)
never sees two clients at once. This module rebuilds the front door on
asyncio:

* **Concurrent parsing** — every connection (TCP) or the stdin pipe feeds
  request lines into one queue as they arrive; protocol errors answer
  immediately without touching the compile path.
* **Micro-batching** — a batcher task collects requests for a short
  *planning window* (``window_s``, default 25 ms) or until ``max_batch``
  and submits them as one :meth:`~repro.service.service.CompileService.
  submit_batch` call: requests that arrive together dedupe against each
  other at the planner, exactly like a ``repro batch`` workload list.
* **Overlap** — each batch runs in a worker thread
  (``loop.run_in_executor``), so the event loop keeps parsing and the next
  window keeps filling while prior solves are still running. Up to
  ``max_inflight`` batches execute concurrently; concurrent batches racing
  for the same key coalesce through the service's shared
  :class:`~repro.service.executor.GroupCoalescer` — one solve, every
  waiter reuses the record.
* **Out-of-order responses** — whichever batch finishes first answers
  first. Responses are correlated by request id (auto-assigned when the
  client sent none) and stamped with the batch sequence number; see
  :mod:`repro.service.protocol`.

Queue time is recorded per request under ``serve.queue_wait`` (the window
plus any backpressure from ``max_inflight``), batch sizes under
``serve.batch_requests`` — both visible in ``repro perf``-style reports
via the server's :class:`~repro.perf.instrument.PerfRecorder`.

Deadlock note: the executor pool has exactly ``max_inflight`` threads and
batch dispatch is gated by a semaphore of the same size, so every batch
that holds coalescer claims is guaranteed a running thread — a waiter can
always be outwaited by its owner, never by a queue slot.
"""

from __future__ import annotations

import asyncio
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import IO, List, Optional

from repro.circuits.circuit import Circuit
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.service.protocol import (
    CompileRequest,
    ProtocolError,
    assign_request_id,
    encode,
    error_response,
    parse_request,
    request_circuit,
    response_for,
)
from repro.service.service import CompileService


class _Client:
    """One response sink (a TCP connection or the stdout pipe).

    Serializes writes with a lock so two finishing batches cannot
    interleave halves of a line, and swallows writes to a peer that
    already disconnected (its requests may still be in a running batch).
    """

    def __init__(self, writer: Optional[asyncio.StreamWriter], stdout: Optional[IO[str]] = None):
        self._writer = writer
        self._stdout = stdout
        self._lock = asyncio.Lock()

    async def send(self, payload: dict) -> None:
        line = encode(payload)
        async with self._lock:
            if self._writer is not None:
                if self._writer.is_closing():
                    return
                try:
                    self._writer.write(line.encode() + b"\n")
                    await self._writer.drain()
                except (ConnectionError, RuntimeError):
                    return
            else:
                print(line, file=self._stdout, flush=True)


def _salvage_request_id(line: str) -> str:
    """The ``id`` of a rejected line, when the JSON was readable enough."""
    try:
        raw = json.loads(line)
    except ValueError:
        return ""
    if isinstance(raw, dict) and raw.get("id"):
        return str(raw["id"])
    return ""


@dataclass
class _Pending:
    """One compile request waiting for (or riding in) a batch."""

    request: CompileRequest
    circuit: Circuit
    client: _Client
    enqueued_at: float = field(default=0.0)


class AsyncCompileServer:
    """Micro-batching asyncio server around one :class:`CompileService`."""

    def __init__(
        self,
        service: CompileService,
        window_s: float = 0.025,
        max_batch: int = 16,
        max_inflight: int = 2,
        perf: Optional[PerfRecorder] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.service = service
        self.window_s = max(0.0, float(window_s))
        self.max_batch = int(max_batch)
        self.max_inflight = int(max_inflight)
        self.perf = recorder_or_null(perf)
        self.n_batches = 0
        self.n_requests = 0
        self.stopping = asyncio.Event()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._sem = asyncio.Semaphore(self.max_inflight)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="repro-batch"
        )
        self._batcher: Optional[asyncio.Task] = None
        self._batch_tasks: set = set()
        self._next_id = 0
        self._outstanding = 0  # enqueued compile requests not yet answered
        self._connections: set = set()  # live TCP writers, closed on shutdown

    # -------------------------------------------------------------- intake
    async def handle_line(self, line: str, client: _Client) -> None:
        """Parse one request line; commands answer inline, compiles enqueue."""
        line = line.strip()
        if not line:
            return
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            # The error response must stay correlatable for a client
            # reading out-of-order responses: echo the id the bad line
            # carried if it was readable at all, else assign a server id
            # (an empty id would be attributable to no request).
            request_id = _salvage_request_id(line)
            if not request_id:
                self._next_id += 1
                request_id = f"auto{self._next_id}"
            await client.send(error_response(request_id, str(exc)))
            return
        if request.is_command:
            await self._handle_command(request, client)
            return
        if not request.id:
            # Bump only when an id is actually assigned, so auto-id
            # numbering is dense and matches the auto-assigned count.
            self._next_id += 1
            assign_request_id(request, self._next_id)
        try:
            circuit = request_circuit(request)
        except Exception as exc:  # bad program name / malformed QASM
            await client.send(
                error_response(request.id, f"{type(exc).__name__}: {exc}")
            )
            return
        self.n_requests += 1
        self._outstanding += 1
        pending = _Pending(
            request=request,
            circuit=circuit,
            client=client,
            enqueued_at=self.perf.now(),
        )
        await self._queue.put(pending)

    async def _handle_command(self, request: CompileRequest, client: _Client) -> None:
        if request.cmd in ("quit", "shutdown"):
            await client.send({"id": request.id, "ok": True, "bye": True})
            if request.cmd == "shutdown":
                self.stopping.set()
            raise ConnectionResetError("client quit")  # unwinds this connection
        if request.cmd == "stats":
            await client.send(
                {
                    "id": request.id,
                    "ok": True,
                    "store": self.service.store.stats.to_dict(),
                    "store_shards": self.service.store.stats_by_shard(),
                    "entries": len(self.service.store),
                    "batches": self.service.n_batches,
                    "served_batches": self.n_batches,
                    "served_requests": self.n_requests,
                    "queued": self._queue.qsize(),
                    "coalesced": self.service.coalescer.coalesced,
                }
            )
            return
        await client.send(
            error_response(request.id, f"unknown cmd {request.cmd!r}")
        )

    # ------------------------------------------------------------- batching
    async def _batch_loop(self) -> None:
        """Collect → dispatch forever; dispatch never blocks collection."""
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch: List[_Pending] = [first]
            deadline = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        async with self._sem:
            for pending in batch:
                self.perf.record_since("serve.queue_wait", pending.enqueued_at)
            self.perf.count("serve.batch_requests", len(batch))
            circuits = [p.circuit for p in batch]
            try:
                report = await loop.run_in_executor(
                    self._pool, self.service.submit_batch, circuits
                )
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                for pending in batch:
                    await pending.client.send(
                        error_response(pending.request.id, message)
                    )
                return
            else:
                self.n_batches += 1
                for pending, request_report in zip(batch, report.requests):
                    payload = response_for(
                        pending.request, request_report, report
                    )
                    payload["batch"] = self.n_batches
                    await pending.client.send(payload)
            finally:
                self._outstanding -= len(batch)

    # ------------------------------------------------------------ lifecycle
    def _ensure_batcher(self) -> None:
        if self._batcher is None or self._batcher.done():
            self._batcher = asyncio.create_task(self._batch_loop())

    async def drain(self) -> None:
        """Wait until every enqueued request has been answered."""
        while self._outstanding > 0:
            if self._batch_tasks:
                await asyncio.gather(
                    *list(self._batch_tasks), return_exceptions=True
                )
            else:
                await asyncio.sleep(0.005)  # batcher still inside its window

    def hang_up(self) -> None:
        """Close every live client connection (server-initiated shutdown).

        Needed before awaiting the TCP server's ``wait_closed``: from
        Python 3.12.1 it waits for every connection handler, so a client
        parked in ``readline`` would block shutdown forever.
        """
        for writer in list(self._connections):
            if not writer.is_closing():
                writer.close()

    async def close(self) -> None:
        await self.drain()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        self._pool.shutdown(wait=True)
        # Persist read-recency bumps, same contract as the sync serve loop.
        self.service.store.flush()

    # ------------------------------------------------------------ frontends
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """`asyncio.start_server` callback: one task per TCP client."""
        self._ensure_batcher()
        self._connections.add(writer)
        client = _Client(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self.handle_line(line.decode(errors="replace"), client)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # disconnect mid-line; in-flight batches still run
        finally:
            self._connections.discard(writer)
            if not writer.is_closing():
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def start_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        self._ensure_batcher()
        return await asyncio.start_server(self.handle_connection, host, port)

    async def serve_stdio(
        self,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
    ) -> int:
        """Async loop over stdin/stdout; returns when stdin closes or quit.

        Lines are read in a side thread (portable — no pipe-transport
        support needed), everything else runs on the event loop, so a
        pipeline of requests written at once is parsed concurrently and
        batched exactly like TCP traffic.
        """
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        self._ensure_batcher()
        client = _Client(None, stdout=stdout)
        loop = asyncio.get_running_loop()
        with ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-stdin") as readers:
            try:
                while not self.stopping.is_set():
                    line = await loop.run_in_executor(readers, stdin.readline)
                    if not line:
                        break
                    await self.handle_line(line, client)
            except ConnectionResetError:
                pass  # quit/shutdown command
        await self.close()
        return 0


async def _amain_tcp(server: AsyncCompileServer, host: str, port: int) -> int:
    tcp = await server.start_tcp(host, port)
    bound = tcp.sockets[0].getsockname()
    # Announce the bound address (port 0 resolves here) for scripted clients.
    print(json.dumps({"serving": f"{bound[0]}:{bound[1]}"}), flush=True)
    async with tcp:
        await server.stopping.wait()
        await server.drain()  # answer everything enqueued before the stop
        server.hang_up()
    await server.close()
    return 0


def run_server(
    service: CompileService,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    window_s: float = 0.025,
    max_batch: int = 16,
    max_inflight: int = 2,
    perf: Optional[PerfRecorder] = None,
) -> int:
    """Blocking entry point for ``repro serve --async``.

    ``port=None`` serves stdin/stdout; otherwise a TCP listener on
    ``host:port`` (``port=0`` picks a free port and announces it as the
    first stdout line).
    """

    async def _amain() -> int:
        server = AsyncCompileServer(
            service,
            window_s=window_s,
            max_batch=max_batch,
            max_inflight=max_inflight,
            perf=perf,
        )
        if port is None:
            return await server.serve_stdio()
        return await _amain_tcp(server, host, port)

    return asyncio.run(_amain())
