"""JSON-lines request/response protocol for ``repro serve``.

One JSON object per line. Requests name a program or carry inline QASM::

    {"id": "r1", "name": "qft_10"}
    {"id": "r2", "qasm": "OPENQASM 2.0; ...", "program": "mine"}
    {"cmd": "stats"}      # store + service counters
    {"cmd": "quit"}       # drain and close this connection / exit
    {"cmd": "shutdown"}   # async server only: stop serving entirely

Responses echo the request id and report coverage, latency, and timing::

    {"id": "r1", "ok": true, "program": "qft_10", "coverage_rate": 0.91, ...}
    {"id": "r2", "ok": false, "error": "..."}

The synchronous ``repro serve`` loop answers strictly in request order. The
asyncio front door (``repro serve --async``) micro-batches requests across
connections and answers **out of order** — whichever batch finishes first
responds first — so the request id is the only way to correlate a response
with its request. A request that arrives without an id is assigned one
(``auto<n>``, per-server counter, echoed back) via
:func:`assign_request_id`; async responses additionally carry ``"batch"``,
the server-side batch sequence number the request was planned in.

Under overload the async server sheds instead of buffering without bound:
a request arriving while the planning queue sits at ``--max-queue`` gets a
typed refusal, ``{"ok": false, "error": "overloaded", "overloaded": true,
"retry_after_s": ...}`` (:func:`overloaded_response`) — back off for the
hinted seconds and resubmit.

Program names resolve against the named benchmark suite plus the ``qft_<n>``
family (n bounded to 1..64 — an unbounded size would let one request line
stall the server in circuit construction); everything else must ship QASM
inline.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuits.circuit import Circuit
from repro.circuits.qasm import parse_qasm
from repro.workloads.qft import qft
from repro.workloads.revlib_like import NAMED_BENCHMARKS, build_named

_QFT_RE = re.compile(r"^qft_(\d+)$")


class ProtocolError(ValueError):
    """Malformed request line."""


@dataclass
class CompileRequest:
    """One parsed request line."""

    id: str
    name: Optional[str] = None
    qasm: Optional[str] = None
    cmd: Optional[str] = None

    @property
    def is_command(self) -> bool:
        return self.cmd is not None


#: Largest ``qft_<n>`` a request line may name. Circuit construction cost
#: grows superlinearly in n, so an unchecked size is a one-line denial of
#: service (``qft_999999999`` would stall the server before any solve);
#: the bound is validated *before* any work is done.
QFT_MAX_QUBITS = 64


def resolve_program(name: str) -> Circuit:
    """Named workload: the benchmark suite plus ``qft_<n>``, n in 1..64."""
    if name in NAMED_BENCHMARKS:
        return build_named(name)
    match = _QFT_RE.match(name)
    if match:
        n = int(match.group(1))
        if not 1 <= n <= QFT_MAX_QUBITS:
            raise ProtocolError(
                f"qft size {n} out of range 1..{QFT_MAX_QUBITS}"
            )
        return qft(n, name=name)
    raise ProtocolError(
        f"unknown program {name!r}; named programs are "
        f"{sorted(NAMED_BENCHMARKS)} or qft_<n> (n in 1..{QFT_MAX_QUBITS})"
    )


def parse_request(line: str) -> CompileRequest:
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ProtocolError("request must be a JSON object")
    if "cmd" in raw:
        return CompileRequest(id=str(raw.get("id", "")), cmd=str(raw["cmd"]))
    request = CompileRequest(
        id=str(raw.get("id", "")),
        name=raw.get("name"),
        qasm=raw.get("qasm"),
    )
    if request.name is None and request.qasm is None:
        raise ProtocolError("request needs 'name' or 'qasm' (or 'cmd')")
    return request


def assign_request_id(request: CompileRequest, n: int) -> CompileRequest:
    """Give an id-less request a server-assigned id (``auto<n>``).

    Out-of-order responders (the async front door) must be able to tag
    every response; requests that already carry an id keep it untouched.
    """
    if not request.id:
        request.id = f"auto{n}"
    return request


def request_circuit(request: CompileRequest) -> Circuit:
    if request.qasm is not None:
        return parse_qasm(request.qasm, name=request.name or request.id or "qasm")
    return resolve_program(request.name)


def response_for(request: CompileRequest, report, batch) -> Dict:
    """Success response from a RequestReport + its BatchReport."""
    stages = {}
    if batch.perf is not None:
        stages = {s.name: round(s.total_s, 6) for s in batch.perf.stages}
    return {
        "id": request.id,
        "ok": True,
        "program": report.name,
        "n_groups": report.n_groups,
        "n_unique": report.n_unique,
        "coverage_rate": round(report.coverage_rate, 6),
        "overall_latency_ns": report.overall_latency,
        "gate_based_latency_ns": report.gate_based_latency,
        "latency_reduction": round(report.latency_reduction, 6),
        "compile_iterations": report.compile_iterations,
        "compiled_groups": batch.n_compiled,
        "coalesced_groups": batch.n_coalesced,
        "wall_ms": round(batch.wall_time * 1e3, 3),
        "store": batch.store_stats,
        "stages": stages,
    }


def error_response(request_id: str, message: str) -> Dict:
    return {"id": request_id, "ok": False, "error": message}


def overloaded_response(
    request_id: str, retry_after_s: float, queued: Optional[int] = None
) -> Dict:
    """Typed load-shed: the async front door's admission control refused
    the request (planning queue at ``--max-queue``). ``overloaded: true``
    distinguishes the shed from a compile failure so clients back off and
    retry after ``retry_after_s`` (the server's drain-time estimate from
    its batch-wall EWMA and current queue depth) instead of re-submitting
    immediately or surfacing a hard error."""
    payload = {
        "id": request_id,
        "ok": False,
        "error": "overloaded",
        "overloaded": True,
        "retry_after_s": round(float(retry_after_s), 3),
    }
    if queued is not None:
        payload["queued"] = int(queued)
    return payload


def encode(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True)
