"""Live fleet dashboard: stdlib HTTP front over the ``stats`` verb.

``repro dashboard --store <spec> [--fleet host:port,...]`` starts a
dependency-free :mod:`http.server` page for operating a replicated
fleet. A background :class:`FleetPoller` issues one ``stats`` RPC per
target per interval and turns the server-stamped ``uptime_s`` deltas
into true per-second rates (client wall-clock never enters the math, so
a slow poll cannot inflate a rate; an ``uptime_s`` that goes *backwards*
is a restart and is counted instead of producing a negative rate).

Endpoints:

* ``/`` — single-file HTML page (no external assets) polling
  ``/stats.json``: fleet stat tiles, a per-target health table with
  per-shard hit rates and failover/quorum counters, and anti-entropy
  heal progress. Status is always an icon *and* a word, never color
  alone; light and dark themes follow ``prefers-color-scheme``.
* ``/stats.json`` — the poller's latest snapshot, verbatim.
* ``/metrics`` — Prometheus text exposition (``repro_store_*``,
  ``repro_antientropy_*``, and with ``--fabric`` the ``repro_fabric_*``
  scheduler gauges) for scraping the same numbers the page shows.
* ``/findings`` — a live :class:`~repro.service.audit.FleetAuditor` pass
  over the ``--store`` spec, as the audit JSON report.
* ``/healthz`` — liveness of the dashboard process itself.

The dashboard is read-only end to end: ``stats`` and ``keys_digest``
are side-effect-free verbs, and the page never exposes a mutating
control. It observes the fleet; ``repro store repair`` changes it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence

from repro.service.remote import (
    REMOTE_SCHEME,
    RemoteStore,
    RetryPolicy,
    is_remote_spec,
    parse_remote_spec,
    parse_route,
)

#: Counters (inside the server's ``stats`` dict) that the poller turns
#: into per-second rates from consecutive ``uptime_s``-stamped samples.
RATED_COUNTERS = ("hits", "misses", "puts", "evictions")


@dataclass(frozen=True)
class Target:
    """One polled server: a display label and its ``remote://`` spec."""

    label: str
    spec: str


def fleet_targets(
    store_spec: Optional[str] = None,
    fleet: Sequence[str] = (),
) -> List[Target]:
    """Expand a ``--store`` route table plus ``--fleet`` extras to targets.

    Every replica of every route becomes its own target (the dashboard
    shows per-replica health, not a failover view), labelled with the
    same ``shard-i[/replica-j]`` locus the auditor uses. ``--fleet``
    entries are bare ``host:port`` extras — servers worth watching that
    the routing table does not mention. A local directory spec expands
    to nothing; the caller decides whether zero targets is an error.
    """
    targets: List[Target] = []
    if store_spec and is_remote_spec(store_spec):
        routes = [p.strip() for p in str(store_spec).split(",") if p.strip()]
        for i, route in enumerate(routes):
            replicas, _params = parse_route(route)
            for j, replica in enumerate(replicas):
                host, port = parse_remote_spec(replica)
                label = (
                    f"shard-{i}/replica-{j}" if len(replicas) > 1
                    else f"shard-{i}"
                )
                targets.append(
                    Target(label, f"{REMOTE_SCHEME}{host}:{port}")
                )
    for extra in fleet:
        extra = str(extra).strip()
        if not extra:
            continue
        host, port = parse_remote_spec(extra)
        targets.append(
            Target(f"{host}:{port}", f"{REMOTE_SCHEME}{host}:{port}")
        )
    return targets


@dataclass
class _Sample:
    """Last good poll of one target (the rate baseline)."""

    uptime_s: float
    counters: Dict[str, float] = field(default_factory=dict)


class FleetPoller:
    """Background ``stats`` poller computing rates from server deltas.

    One persistent :class:`RemoteStore` client per target (a poll reuses
    the connection; a dead target costs one short reconnect attempt per
    interval, not a backoff ladder). ``snapshot()`` hands back the
    latest results without blocking on the wire.
    """

    def __init__(
        self,
        targets: Sequence[Target],
        interval_s: float = 2.0,
        timeout_s: float = 2.0,
        fabric: Optional[str] = None,
    ) -> None:
        self.targets = list(targets)
        self.interval_s = float(interval_s)
        self.fabric = fabric  # worker fabric host:port; polled via stats verb
        self.fabric_timeout_s = float(timeout_s)
        self._fabric_latest: Optional[Dict] = None
        self._clients = {
            t.label: RemoteStore(
                t.spec,
                timeout_s=float(timeout_s),
                stat_prefix="dashboard.poll.",
                retry=RetryPolicy(attempts=1, base_s=0.05, cap_s=0.1),
            )
            for t in self.targets
        }
        self._lock = threading.Lock()
        self._last: Dict[str, _Sample] = {}
        self._restarts: Dict[str, int] = {t.label: 0 for t in self.targets}
        self._latest: Dict[str, Dict] = {}
        self._polls = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "FleetPoller":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="fleet-poller", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for client in self._clients.values():
            client.close()

    def _run(self) -> None:
        self.poll_once()
        while not self._stop.wait(self.interval_s):
            self.poll_once()

    # -------------------------------------------------------------- polling
    def poll_once(self) -> Dict:
        """One synchronous pass over every target; returns the snapshot."""
        rows = [self._poll_target(t) for t in self.targets]
        fabric_row = self._poll_fabric() if self.fabric else None
        with self._lock:
            self._polls += 1
            for row in rows:
                self._latest[row["target"]] = row
            if fabric_row is not None:
                self._fabric_latest = fabric_row
        return self.snapshot()

    def _poll_fabric(self) -> Dict:
        """One ``stats`` verb round trip against the worker fabric."""
        from repro.service.remote import RemoteUnavailable, fabric_stats

        try:
            stats = fabric_stats(self.fabric, timeout_s=self.fabric_timeout_s)
        except (RemoteUnavailable, ValueError):
            return {"address": self.fabric, "up": False}
        return {"address": self.fabric, "up": True, **stats}

    def _poll_target(self, target: Target) -> Dict:
        client = self._clients[target.label]
        stats = client.server_stats()
        if stats is None:
            return {
                "target": target.label,
                "address": target.spec,
                "up": False,
            }
        row = {
            "target": target.label,
            "address": target.spec,
            "up": True,
            "uptime_s": stats.get("uptime_s"),
            "snapshot_seq": stats.get("snapshot_seq"),
            "entries": stats.get("entries"),
            "stats": stats.get("stats") or {},
            "shards": stats.get("shards"),
            "antientropy": stats.get("antientropy"),
            "fingerprints": stats.get("fingerprints") or [],
            "non_converged": stats.get("non_converged"),
            "rates": {},
        }
        uptime = stats.get("uptime_s")
        counters = {
            name: float(row["stats"].get(name, 0) or 0)
            for name in RATED_COUNTERS
        }
        with self._lock:
            last = self._last.get(target.label)
            if uptime is not None:
                if last is not None and uptime < last.uptime_s:
                    # The server came back with a younger clock: restart.
                    self._restarts[target.label] += 1
                elif last is not None and uptime > last.uptime_s:
                    dt = uptime - last.uptime_s
                    row["rates"] = {
                        f"{name}_per_s": max(
                            0.0, (counters[name] - last.counters.get(name, 0.0)) / dt
                        )
                        for name in RATED_COUNTERS
                    }
                self._last[target.label] = _Sample(float(uptime), counters)
            row["restarts"] = self._restarts[target.label]
        return row

    def snapshot(self) -> Dict:
        """The latest per-target rows plus fleet rollups (non-blocking)."""
        with self._lock:
            rows = [
                dict(self._latest.get(t.label, {
                    "target": t.label, "address": t.spec, "up": False,
                }))
                for t in self.targets
            ]
            polls = self._polls
            fabric_row = (
                dict(self._fabric_latest)
                if self._fabric_latest is not None
                else ({"address": self.fabric, "up": False}
                      if self.fabric else None)
            )
        up = [r for r in rows if r.get("up")]
        hits = sum(float(r["stats"].get("hits", 0) or 0) for r in up)
        misses = sum(float(r["stats"].get("misses", 0) or 0) for r in up)
        healed = sum(
            float((r.get("antientropy") or {}).get("keys_healed", 0) or 0)
            for r in up
        )
        return {
            "polls": polls,
            "interval_s": self.interval_s,
            "targets": rows,
            "fabric": fabric_row,
            "fleet": {
                "targets": len(rows),
                "up": len(up),
                "entries": sum(int(r.get("entries") or 0) for r in up),
                "hit_rate": hits / (hits + misses) if hits + misses else None,
                "keys_healed": healed,
                "fingerprints": sorted({
                    fp for r in up for fp in (r.get("fingerprints") or [])
                }),
            },
        }


# ------------------------------------------------------------- /metrics
def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_metrics(snapshot: Dict) -> str:
    """The snapshot as Prometheus text exposition (one scrape's worth)."""
    lines: List[str] = []

    def emit(name: str, help_text: str, kind: str, rows: List) -> None:
        if not rows:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for target, value in rows:
            lines.append(
                f'{name}{{target="{_escape_label(target)}"}} {value:g}'
            )

    rows = snapshot.get("targets", [])
    emit(
        "repro_store_up", "Whether the last stats poll answered.", "gauge",
        [(r["target"], 1 if r.get("up") else 0) for r in rows],
    )
    up = [r for r in rows if r.get("up")]
    emit(
        "repro_store_uptime_seconds", "Server-stamped monotonic uptime.",
        "gauge",
        [(r["target"], float(r.get("uptime_s") or 0)) for r in up],
    )
    emit(
        "repro_store_restarts_total",
        "Uptime regressions seen by this poller.", "counter",
        [(r["target"], float(r.get("restarts") or 0)) for r in up],
    )
    emit(
        "repro_store_entries", "Entries held by the served store.", "gauge",
        [(r["target"], float(r.get("entries") or 0)) for r in up],
    )
    for counter in RATED_COUNTERS:
        emit(
            f"repro_store_{counter}_total",
            f"Store {counter} since server start.", "counter",
            [
                (r["target"], float(r["stats"].get(counter, 0) or 0))
                for r in up
            ],
        )
    for counter in ("failovers", "degraded", "quorum_failures",
                    "retry_exhausted"):
        values = [
            (r["target"], float(r["stats"].get(counter, 0) or 0))
            for r in up
            if counter in r["stats"]
        ]
        emit(
            f"repro_store_{counter}_total",
            f"Store {counter} since server start.", "counter", values,
        )
    emit(
        "repro_store_non_converged",
        "Entries that never converged (absent when unknown).", "gauge",
        [
            (r["target"], float(r["non_converged"]))
            for r in up
            if r.get("non_converged") is not None
        ],
    )
    ae = [(r, r.get("antientropy")) for r in up
          if isinstance(r.get("antientropy"), dict)]
    emit(
        "repro_antientropy_running",
        "Whether the anti-entropy loop thread is alive.", "gauge",
        [(r["target"], 1 if status.get("running") else 0)
         for r, status in ae],
    )
    emit(
        "repro_antientropy_paused",
        "Whether the anti-entropy loop is paused.", "gauge",
        [(r["target"], 1 if status.get("paused") else 0)
         for r, status in ae],
    )
    for counter in ("rounds", "keys_healed", "bytes",
                    "skipped_unreachable", "digest_skips"):
        emit(
            f"repro_antientropy_{counter}_total",
            f"Anti-entropy {counter} since loop start.", "counter",
            [
                (r["target"], float(status.get(counter, 0) or 0))
                for r, status in ae
            ],
        )
    fabric = snapshot.get("fabric")
    if fabric is not None:
        lines.append(
            "# HELP repro_fabric_up Whether the worker fabric answered "
            "the last stats poll."
        )
        lines.append("# TYPE repro_fabric_up gauge")
        lines.append(f"repro_fabric_up {1 if fabric.get('up') else 0}")
    if fabric is not None and fabric.get("up"):
        for name, kind in (
            ("workers_connected", "gauge"),
            ("parts_in_flight", "gauge"),
            ("parts_queued", "gauge"),
            ("n_dispatched", "counter"),
            ("n_steals", "counter"),
            ("n_reassigned", "counter"),
            ("n_shed", "counter"),
            ("n_local_fallback", "counter"),
        ):
            value = fabric.get(name)
            if value is None:
                continue
            metric = f"repro_fabric_{name}"
            if kind == "counter":
                metric += "_total"
            lines.append(
                f"# HELP {metric} Fabric scheduler {name} "
                f"{'since fabric start' if kind == 'counter' else ''}".rstrip()
                + "."
            )
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {float(value):g}")
        workers = fabric.get("workers") or {}
        for name, kind in (
            ("queued", "gauge"),
            ("in_flight", "gauge"),
            ("parts", "counter"),
            ("steals_won", "counter"),
            ("steals_lost", "counter"),
        ):
            rows_ = [
                (label, float(row.get(name, 0) or 0))
                for label, row in sorted(workers.items())
                if row.get("connected")
            ]
            if not rows_:
                continue
            metric = f"repro_fabric_worker_{name}"
            if kind == "counter":
                metric += "_total"
            lines.append(f"# HELP {metric} Per-worker scheduler {name}.")
            lines.append(f"# TYPE {metric} {kind}")
            for label, value in rows_:
                lines.append(
                    f'{metric}{{worker="{_escape_label(label)}"}} {value:g}'
                )
    lines.append("# HELP repro_dashboard_polls_total Poll passes completed.")
    lines.append("# TYPE repro_dashboard_polls_total counter")
    lines.append(
        f"repro_dashboard_polls_total {float(snapshot.get('polls', 0)):g}"
    )
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ page
# Single-file page: stat tiles + two tables, dependency-free. Status is
# icon + word (never color alone); themes follow prefers-color-scheme
# from one set of custom properties; numeric table columns are
# right-aligned tabular-nums.
_PAGE = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro fleet dashboard</title>
<style>
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --ink-muted: #898781; --grid: #e1e0d9; --card: #ffffff;
  --good: #0ca30c; --warning: #fab219; --serious: #ec835a;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --ink-muted: #898781; --grid: #2c2c2a; --card: #222221;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 24px; }
.tile {
  background: var(--card); border: 1px solid var(--grid); border-radius: 8px;
  padding: 12px 16px; min-width: 132px;
}
.tile .v { font-size: 26px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile .k { color: var(--ink-2); font-size: 12px; margin-top: 2px; }
h2 { font-size: 14px; margin: 24px 0 8px; color: var(--ink); }
table { border-collapse: collapse; width: 100%; background: var(--card);
        border: 1px solid var(--grid); border-radius: 8px; }
th, td { padding: 7px 12px; text-align: left; border-top: 1px solid var(--grid); }
thead th { border-top: none; color: var(--ink-2); font-weight: 500;
           font-size: 12px; }
td.n, th.n { text-align: right; font-variant-numeric: tabular-nums; }
.status { white-space: nowrap; font-weight: 500; }
.status.good { color: var(--good); }
.status.warning { color: var(--warning); }
.status.serious { color: var(--serious); }
.status.critical { color: var(--critical); }
.muted { color: var(--ink-muted); }
#err { color: var(--critical); margin: 8px 0; display: none; }
</style>
</head>
<body>
<h1>repro fleet dashboard</h1>
<p class="sub" id="sub">polling&hellip;</p>
<div id="err"></div>
<div class="tiles" id="tiles"></div>
<h2>Targets</h2>
<table id="targets"><thead><tr>
  <th>target</th><th>status</th><th class="n">uptime</th>
  <th class="n">entries</th><th class="n">hit rate</th>
  <th class="n">hits/s</th><th class="n">puts/s</th>
  <th class="n">evictions</th><th class="n">failovers</th>
  <th class="n">quorum fails</th><th>anti-entropy</th>
</tr></thead><tbody></tbody></table>
<h2 id="fabric-h" style="display:none">Worker fabric
  <span class="muted" id="fabric-sub"></span></h2>
<table id="fabric" style="display:none"><thead><tr>
  <th>worker</th><th>status</th><th class="n">parts</th>
  <th class="n">queued</th><th class="n">in flight</th>
  <th class="n">rate</th><th class="n">steals won</th>
  <th class="n">steals lost</th><th class="n">solve s</th>
</tr></thead><tbody></tbody></table>
<h2>Findings <span class="muted">(live audit)</span></h2>
<table id="findings"><thead><tr>
  <th>severity</th><th>code</th><th>locus</th><th>message</th>
</tr></thead><tbody></tbody></table>
<script>
"use strict";
const SEV = {
  info: ["muted", "\\u24D8"], warn: ["warning", "\\u26A0"],
  error: ["serious", "\\u2716"], critical: ["critical", "\\u2716"],
};
const esc = (s) => String(s).replace(/[&<>"]/g,
  (c) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const fmt = (v, digits = 0) =>
  v == null ? "\\u2013" : Number(v).toLocaleString("en-US",
    {maximumFractionDigits: digits, minimumFractionDigits: digits});
const pct = (v) => v == null ? "\\u2013" : (100 * v).toFixed(1) + "%";
const dur = (s) => {
  if (s == null) return "\\u2013";
  s = Math.floor(s);
  if (s < 90) return s + "s";
  if (s < 5400) return Math.floor(s / 60) + "m";
  return Math.floor(s / 3600) + "h" + Math.floor((s % 3600) / 60) + "m";
};
function tile(value, label) {
  return '<div class="tile"><div class="v">' + value +
         '</div><div class="k">' + esc(label) + "</div></div>";
}
function aeCell(ae) {
  if (!ae) return '<span class="muted">\\u2013</span>';
  if (!ae.running)
    return '<span class="status critical">\\u2716 stopped</span>';
  const word = ae.paused ? "paused" : "running";
  const cls = ae.paused ? "warning" : "good";
  const icon = ae.paused ? "\\u23F8" : "\\u2713";
  return '<span class="status ' + cls + '">' + icon + " " + word +
         '</span> <span class="muted">' + fmt(ae.rounds) + " rounds, " +
         fmt(ae.keys_healed) + " healed</span>";
}
function render(snap) {
  const f = snap.fleet;
  const drift = f.fingerprints.length > 1;
  document.getElementById("sub").textContent =
    "poll #" + snap.polls + " every " + snap.interval_s + "s";
  document.getElementById("tiles").innerHTML =
    tile((f.up === f.targets
            ? '<span class="status good">\\u2713 ' :
            '<span class="status critical">\\u2716 ') +
         f.up + "/" + f.targets + "</span>", "replicas up") +
    tile(fmt(f.entries), "entries") +
    tile(pct(f.hit_rate), "fleet hit rate") +
    tile(fmt(f.keys_healed), "keys healed") +
    tile(drift
           ? '<span class="status critical">\\u2716 drift</span>'
           : '<span class="status good">\\u2713 single</span>',
         "engine fingerprint");
  const body = [];
  for (const t of snap.targets) {
    const s = t.stats || {}, r = t.rates || {};
    const hits = Number(s.hits || 0), misses = Number(s.misses || 0);
    body.push("<tr><td>" + esc(t.target) + "</td><td>" +
      (t.up ? '<span class="status good">\\u2713 up</span>'
            : '<span class="status critical">\\u2716 down</span>') +
      '</td><td class="n">' + dur(t.uptime_s) +
      '</td><td class="n">' + fmt(t.entries) +
      '</td><td class="n">' + pct(hits + misses ? hits / (hits + misses)
                                                : null) +
      '</td><td class="n">' + fmt(r.hits_per_s, 1) +
      '</td><td class="n">' + fmt(r.puts_per_s, 1) +
      '</td><td class="n">' + fmt(s.evictions) +
      '</td><td class="n">' + fmt(s.failovers) +
      '</td><td class="n">' + fmt(s.quorum_failures) +
      "</td><td>" + aeCell(t.antientropy) + "</td></tr>");
  }
  document.querySelector("#targets tbody").innerHTML = body.join("");
  renderFabric(snap.fabric);
}
function renderFabric(fab) {
  const head = document.getElementById("fabric-h");
  const table = document.getElementById("fabric");
  if (!fab) { head.style.display = "none"; table.style.display = "none";
              return; }
  head.style.display = ""; table.style.display = "";
  document.getElementById("fabric-sub").textContent = fab.up
    ? "(" + fab.address + " \\u00b7 policy " + fab.policy + " \\u00b7 " +
      fmt(fab.parts_queued) + " queued \\u00b7 " + fmt(fab.n_steals) +
      " steals \\u00b7 " + fmt(fab.n_shed) + " shed)"
    : "(" + fab.address + " \\u2013 unreachable)";
  const body = [];
  for (const [label, w] of Object.entries(fab.workers || {})) {
    body.push("<tr><td>" + esc(label) + "</td><td>" +
      (w.connected ? '<span class="status good">\\u2713 up</span>'
                   : '<span class="status muted">\\u2013 gone</span>') +
      '</td><td class="n">' + fmt(w.parts) +
      '</td><td class="n">' + fmt(w.queued) +
      '</td><td class="n">' + fmt(w.in_flight) +
      '</td><td class="n">' + (w.rate == null ? "\\u2013"
                                              : fmt(w.rate, 1)) +
      '</td><td class="n">' + fmt(w.steals_won) +
      '</td><td class="n">' + fmt(w.steals_lost) +
      '</td><td class="n">' + fmt(w.solve_s, 2) + "</td></tr>");
  }
  document.querySelector("#fabric tbody").innerHTML = body.length
    ? body.join("")
    : '<tr><td colspan="9"><span class="muted">no workers enrolled' +
      "</span></td></tr>";
}
function renderFindings(report) {
  const rows = report.findings.map((f) => {
    const [cls, icon] = SEV[f.severity] || ["muted", "\\u24D8"];
    return '<tr><td><span class="status ' + cls + '">' + icon + " " +
      esc(f.severity) + "</span></td><td>" + esc(f.code) + "</td><td>" +
      esc(f.locus) + "</td><td>" + esc(f.message) + "</td></tr>";
  });
  document.querySelector("#findings tbody").innerHTML = rows.length
    ? rows.join("")
    : '<tr><td colspan="4"><span class="status good">\\u2713 clean' +
      "</span></td></tr>";
}
async function tick() {
  try {
    const snap = await (await fetch("/stats.json")).json();
    render(snap);
    document.getElementById("err").style.display = "none";
  } catch (e) {
    const el = document.getElementById("err");
    el.textContent = "\\u2716 dashboard unreachable: " + e;
    el.style.display = "block";
  }
}
async function tickFindings() {
  try { renderFindings(await (await fetch("/findings")).json()); }
  catch (e) { /* surfaced by tick() already */ }
}
tick(); tickFindings();
setInterval(tick, 2000);
setInterval(tickFindings, 10000);
</script>
</body>
</html>
"""


class DashboardServer:
    """ThreadingHTTPServer wiring the poller, the page, and the auditor.

    ``port=0`` picks a free port (readable as :attr:`port` after
    ``start()``). The audit spec defaults to the polled ``--store`` spec;
    ``/findings`` runs a fresh read-only pass per request, so it is as
    live as the page that calls it.
    """

    def __init__(
        self,
        poller: FleetPoller,
        audit_spec: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.poller = poller
        self.audit_spec = audit_spec
        self.host = host
        self._requested_port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("dashboard not started")
        return self._httpd.server_address[1]

    def start(self) -> "DashboardServer":
        dashboard = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # quiet by default
                pass

            def _send(self, status: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.send_header("Cache-Control", "no-store")
                self.end_headers()
                self.wfile.write(body)

            def _json(self, payload: Dict, status: int = 200) -> None:
                self._send(
                    status, "application/json",
                    json.dumps(payload).encode(),
                )

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/":
                        self._send(
                            200, "text/html; charset=utf-8", _PAGE.encode()
                        )
                    elif path == "/stats.json":
                        self._json(dashboard.poller.snapshot())
                    elif path == "/metrics":
                        body = render_metrics(dashboard.poller.snapshot())
                        self._send(
                            200, "text/plain; version=0.0.4", body.encode()
                        )
                    elif path == "/findings":
                        self._json(dashboard.run_audit())
                    elif path == "/healthz":
                        self._json({"ok": True})
                    else:
                        self._json({"error": "not found"}, status=404)
                except BrokenPipeError:
                    pass
                except Exception as exc:  # a bad poll must not kill the page
                    try:
                        self._json({"error": str(exc)}, status=500)
                    except OSError:
                        pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self.poller.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="fleet-dashboard",
            daemon=True,
        )
        self._thread.start()
        return self

    def run_audit(self) -> Dict:
        """One live audit pass (the ``/findings`` document)."""
        from repro.service.audit import FleetAuditor

        fabric = self.poller.fabric
        if not self.audit_spec and not fabric:
            return {"spec": None, "findings": [], "worst": None,
                    "counts": {}}
        auditor = FleetAuditor(
            self.audit_spec or "", timeout_s=2.0, fabric=fabric
        )
        if not self.audit_spec:
            # Fabric-only dashboard: skip the (empty) store walk, keep
            # the admission-pressure probe.
            findings = []
            auditor._audit_fabric(fabric, findings)
            return auditor.to_report(findings)
        return auditor.to_report(auditor.run())

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.poller.stop()


def serve_dashboard(
    store_spec: Optional[str],
    fleet: Sequence[str] = (),
    host: str = "127.0.0.1",
    port: int = 0,
    interval_s: float = 2.0,
    fabric: Optional[str] = None,
) -> DashboardServer:
    """Build and start a dashboard for one fleet (the CLI entry point).

    ``fabric`` is a worker fabric's ``host:port`` (as announced by a
    ``--workers remote`` service): its ``stats`` verb is polled alongside
    the stores and rendered as a per-worker occupancy/steals table, as
    ``repro_fabric_*`` metrics, and as the ``elevated_load_shedding``
    probe in ``/findings``. Raises ``ValueError`` when the spec,
    ``--fleet``, and ``--fabric`` together name nothing to poll (a local
    directory has no server — run ``repro store audit`` against it
    instead).
    """
    targets = fleet_targets(store_spec, fleet)
    if not targets and not fabric:
        raise ValueError(
            f"nothing to poll: {store_spec!r} names no remote:// servers "
            f"and --fleet/--fabric are empty (for a local directory, use "
            f"`repro store audit`/`repro store stats`)"
        )
    poller = FleetPoller(targets, interval_s=interval_s, fabric=fabric)
    audit_spec = (
        store_spec if store_spec and is_remote_spec(store_spec) else None
    )
    server = DashboardServer(poller, audit_spec=audit_spec, host=host,
                             port=port)
    return server.start()
