"""Fleet auditor: typed findings over any store spec, strictly read-only.

``repro store audit --store <spec>`` walks whatever the spec names — a
single directory, a sharded root, or a ``remote://`` routing table with
replica lists — and emits :class:`Finding` records from a fixed catalog
(:data:`CHECKS`): each has a stable ``code``, a ``severity`` from
:data:`SEVERITIES`, a ``locus`` naming the shard/replica it was found at
(``store``, ``shard-0``, ``shard-0/replica-1``), a human message, and a
machine-readable ``details`` dict. The worst severity maps to a distinct
exit code via :func:`exit_code_for`, so CI can gate on fleet health the
same way it gates on tests (``--fail-on error``).

The auditor is **read-only by construction**. Local stores are walked by
reading ``manifest.json`` and listing ``entries/`` directly — it never
instantiates a :class:`~repro.service.store.PulseStore`, whose corrupt-
manifest recovery path *writes* a rebuilt manifest; a manifest the
auditor cannot parse is itself a finding (``manifest_unreadable``),
which is the whole point of auditing. Remote fleets are probed with two
RPCs per replica — one ``keys_digest`` (the constant-size convergence
probe) and one ``stats`` — both side-effect-free on the server.

Finding catalog (code -> severity):

* ``replica_unreachable`` (error) — a probe could not reach a replica
  after its (tight) retry budget.
* ``replica_divergence`` (error) — replicas of one route answer
  different key-set digests; anti-entropy or ``repro store repair``
  should close it.
* ``fingerprint_drift`` (critical) — the fleet serves more than one
  engine-identity stamp: some copy of the data was produced under a
  different engine/run configuration and its latencies are wrong for the
  others' clients.
* ``manifest_unreadable`` (critical) — a manifest (or shard map) failed
  to parse or carries an incompatible version.
* ``orphan_entries`` (warn) — entry files on disk with no manifest row
  (torn puts or an interrupted migration); harmless individually, but a
  growing count means flushes are not landing. A local walk lists them;
  a remote probe reads the server-counted ``orphans`` stat, so the
  finding fires either way.
* ``stale_manifest_rows`` (info) — manifest rows whose entry file is
  missing (tolerated on load, worth knowing about).
* ``shard_imbalance`` (warn) — the fullest shard holds more than
  ``thresholds.shard_imbalance`` times the mean; the digest ranges are
  uniform, so imbalance this large means mis-routing or a half-migrated
  reshard.
* ``non_converged`` (warn) — more than ``thresholds.non_converged_ratio``
  of entries never converged; run ``repro store revalidate``.
* ``eviction_pressure`` (warn) — a server has evicted more than
  ``thresholds.eviction_ratio`` of what it ingested since start: the
  LRU bound is too tight for the working set.
* ``antientropy_stalled`` (error) — the loop is attached but its thread
  is dead, or it has completed zero rounds after several intervals.
* ``antientropy_paused`` (warn) — the loop is paused; divergence will
  not self-heal until resumed.
* ``antientropy_unreachable_peers`` (warn) — rounds are skipping an
  unreachable peer.
* ``elevated_quorum_failures`` (error), ``elevated_degraded`` (warn),
  ``elevated_retry_exhausted`` (warn) — a served store's own counters
  show writes breaking quorum / absorbed degradations / burned retry
  budgets since server start.
* ``elevated_load_shedding`` (warn) — with ``--fabric host:port``: the
  worker fabric's counters show the async front door shedding more than
  ``thresholds.shed_ratio`` of admissions — the fleet is undersized for
  its traffic (add workers, raise ``--max-queue``, or accept the sheds).

Exit codes (:func:`exit_code_for`): 0 when no finding reaches the
``--fail-on`` gate, else 1/4/5/6 for a worst finding of
info/warn/error/critical (2 stays the usage error, 3 the batch quorum
failure — an auditor exit is always distinguishable from both).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.store import ENTRIES_DIR, MANIFEST_NAME, MANIFEST_VERSION

SEVERITIES = ("info", "warn", "error", "critical")

# Worst-severity -> process exit code. 2 (usage) and 3 (quorum failure)
# are already spoken for by the front doors, so the audit gate gets its
# own contiguous band; 0 means "clean, or nothing at/above the gate".
EXIT_BY_SEVERITY = {"info": 1, "warn": 4, "error": 5, "critical": 6}

# The catalog: every finding the auditor can emit, with its severity and
# a one-line operator meaning. Emitting a code not in this table is a
# bug (Finding.__post_init__ enforces it), so the table doubles as the
# documentation CI dashboards key off.
CHECKS: Dict[str, Tuple[str, str]] = {
    "replica_unreachable": (
        "error", "a replica did not answer the audit probes"),
    "replica_divergence": (
        "error", "replicas of one route hold different key sets"),
    "fingerprint_drift": (
        "critical", "the fleet serves more than one engine fingerprint"),
    "manifest_unreadable": (
        "critical", "a manifest or shard map failed to parse"),
    "orphan_entries": (
        "warn", "entry files on disk with no manifest row"),
    "stale_manifest_rows": (
        "info", "manifest rows whose entry file is missing"),
    "shard_imbalance": (
        "warn", "one shard holds far more entries than the mean"),
    "non_converged": (
        "warn", "too many entries never reached convergence"),
    "eviction_pressure": (
        "warn", "the LRU bound is evicting a large share of ingest"),
    "antientropy_stalled": (
        "error", "the anti-entropy loop is attached but not making rounds"),
    "antientropy_paused": (
        "warn", "the anti-entropy loop is paused"),
    "antientropy_unreachable_peers": (
        "warn", "anti-entropy rounds are skipping an unreachable peer"),
    "elevated_quorum_failures": (
        "error", "writes have been breaking their quorum"),
    "elevated_degraded": (
        "warn", "operations have been absorbed as degradations"),
    "elevated_retry_exhausted": (
        "warn", "RPCs have been burning their whole retry budget"),
    "elevated_load_shedding": (
        "warn", "the front door is shedding a large share of admissions"),
}


def severity_rank(severity: str) -> int:
    """Position in :data:`SEVERITIES` (loud on unknown levels)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of "
            f"{'|'.join(SEVERITIES)}"
        ) from None


@dataclass
class Finding:
    """One typed audit finding (see the module docstring's catalog)."""

    code: str
    locus: str
    message: str
    details: Dict = field(default_factory=dict)
    severity: str = ""  # defaulted from CHECKS by __post_init__

    def __post_init__(self) -> None:
        if self.code not in CHECKS:
            raise ValueError(
                f"finding code {self.code!r} is not in the audit catalog"
            )
        if not self.severity:
            self.severity = CHECKS[self.code][0]
        severity_rank(self.severity)  # loud on garbage

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "locus": self.locus,
            "message": self.message,
            "details": self.details,
        }


def worst_severity(findings: Sequence[Finding]) -> Optional[str]:
    """The highest severity present, or None for a clean audit."""
    worst = None
    for finding in findings:
        if worst is None or severity_rank(finding.severity) > severity_rank(worst):
            worst = finding.severity
    return worst


def exit_code_for(findings: Sequence[Finding], fail_on: str = "error") -> int:
    """Severity-gated exit code: 0 below the gate, else the worst's code."""
    severity_rank(fail_on)  # validate the gate itself
    worst = worst_severity(findings)
    if worst is None or severity_rank(worst) < severity_rank(fail_on):
        return 0
    return EXIT_BY_SEVERITY[worst]


@dataclass(frozen=True)
class AuditThresholds:
    """Tunable floors for the ratio/imbalance checks.

    ``shard_imbalance``: fullest-shard-to-mean ratio beyond which the
    digest ranges cannot plausibly be uniform (checked only once the
    store holds at least ``imbalance_min_entries`` so tiny stores never
    alarm). ``non_converged_ratio``: tolerated fraction of entries that
    never converged. ``eviction_ratio``: tolerated evictions-to-puts
    ratio since server start. ``stall_intervals``: how many anti-entropy
    intervals may pass with zero completed rounds before the loop counts
    as stalled. ``shed_ratio``: tolerated fraction of admissions the
    front door refused (sheds over sheds-plus-dispatches) before the
    fabric probe flags ``elevated_load_shedding``.
    """

    shard_imbalance: float = 2.0
    imbalance_min_entries: int = 16
    non_converged_ratio: float = 0.5
    eviction_ratio: float = 0.25
    stall_intervals: float = 3.0
    shed_ratio: float = 0.05


@dataclass
class _ShardView:
    """What the walk learned about one shard (local part or remote route)."""

    locus: str
    entries: Optional[int] = None  # None: nothing reachable to count
    non_converged: Optional[int] = None
    fingerprints: List[str] = field(default_factory=list)


class FleetAuditor:
    """Read-only walk of one store spec, yielding typed findings.

    ``spec`` is anything ``--store`` accepts: a local directory (plain or
    sharded) or a ``remote://`` routing table whose routes may carry
    ``|``-separated replica lists. Local specs are audited from the disk
    bytes alone; remote specs cost two RPCs per replica (``keys_digest``
    + ``stats``) under a deliberately tight retry policy — an audit of a
    dead fleet must answer in seconds, not sit out a client backoff
    ladder per replica.
    """

    def __init__(
        self,
        spec: str,
        thresholds: Optional[AuditThresholds] = None,
        timeout_s: float = 5.0,
        fabric: Optional[str] = None,
    ) -> None:
        self.spec = str(spec)
        self.thresholds = thresholds or AuditThresholds()
        self.timeout_s = float(timeout_s)
        self.fabric = fabric

    # ------------------------------------------------------------------ run
    def run(self) -> List[Finding]:
        """One full audit pass; findings sorted worst-first, then locus."""
        findings: List[Finding] = []
        if "remote://" in self.spec:
            shards = self._audit_remote(findings)
        else:
            shards = self._audit_local(findings)
        self._check_fleet(shards, findings)
        if self.fabric:
            self._audit_fabric(self.fabric, findings)
        findings.sort(
            key=lambda f: (-severity_rank(f.severity), f.locus, f.code)
        )
        return findings

    def to_report(self, findings: Sequence[Finding]) -> Dict:
        """The ``repro store audit --json`` document."""
        return {
            "spec": self.spec,
            "findings": [f.to_dict() for f in findings],
            "worst": worst_severity(findings),
            "counts": {
                severity: sum(1 for f in findings if f.severity == severity)
                for severity in SEVERITIES
            },
        }

    # ---------------------------------------------------------- local walk
    def _audit_local(self, findings: List[Finding]) -> List[_ShardView]:
        from repro.service.sharding import (
            is_sharded,
            load_shard_map,
            shard_dir_name,
        )
        from repro.service.store import StoreVersionError

        root = self.spec
        if is_sharded(root):
            try:
                shard_map = load_shard_map(root)
            except StoreVersionError as exc:
                findings.append(Finding(
                    code="manifest_unreadable",
                    locus="store",
                    message=f"shard map at {root!r} is unreadable: {exc}",
                    details={"file": os.path.join(root, "shardmap.json")},
                ))
                return []
            parts = [
                (f"shard-{i}", os.path.join(root, shard_dir_name(i)))
                for i in range(shard_map["n_shards"])
            ]
        else:
            parts = [("shard-0", root)]
        return [
            self._audit_part(locus, part_dir, findings)
            for locus, part_dir in parts
        ]

    def _audit_part(
        self, locus: str, part_dir: str, findings: List[Finding]
    ) -> _ShardView:
        """One PulseStore directory, from the raw disk bytes only."""
        view = _ShardView(locus=locus)
        manifest_path = os.path.join(part_dir, MANIFEST_NAME)
        entries_dir = os.path.join(part_dir, ENTRIES_DIR)
        on_disk = set()
        if os.path.isdir(entries_dir):
            on_disk = {
                name[: -len(".json")]
                for name in os.listdir(entries_dir)
                if name.endswith(".json")
            }
        rows: Dict[str, Dict] = {}
        if os.path.exists(manifest_path):
            try:
                with open(manifest_path) as handle:
                    manifest = json.load(handle)
                if not isinstance(manifest, dict):
                    raise ValueError("manifest is not an object")
            except (OSError, ValueError) as exc:
                findings.append(Finding(
                    code="manifest_unreadable",
                    locus=locus,
                    message=f"manifest at {manifest_path!r} is unreadable: "
                            f"{exc} (a PulseStore would rewrite it from the "
                            f"entry files; the auditor only reports)",
                    details={"file": manifest_path},
                ))
                return view
            if manifest.get("version") != MANIFEST_VERSION:
                findings.append(Finding(
                    code="manifest_unreadable",
                    locus=locus,
                    message=f"manifest at {manifest_path!r} has version "
                            f"{manifest.get('version')!r}; this build reads "
                            f"version {MANIFEST_VERSION}",
                    details={
                        "file": manifest_path,
                        "version": manifest.get("version"),
                    },
                ))
                return view
            if manifest.get("fingerprint"):
                view.fingerprints = [str(manifest["fingerprint"])]
            raw_rows = manifest.get("entries", {})
            if isinstance(raw_rows, dict):
                rows = raw_rows
        view.entries = len(rows)
        view.non_converged = sum(
            1
            for meta in rows.values()
            if isinstance(meta, dict) and not meta.get("converged", True)
        )
        orphans = sorted(on_disk - set(rows))
        if orphans:
            findings.append(Finding(
                code="orphan_entries",
                locus=locus,
                message=f"{len(orphans)} entry file(s) under "
                        f"{entries_dir!r} have no manifest row",
                details={"count": len(orphans), "sample": orphans[:5]},
            ))
        stale = sorted(set(rows) - on_disk)
        if stale:
            findings.append(Finding(
                code="stale_manifest_rows",
                locus=locus,
                message=f"{len(stale)} manifest row(s) at {locus} have no "
                        f"entry file (tolerated on load)",
                details={"count": len(stale), "sample": stale[:5]},
            ))
        return view

    # --------------------------------------------------------- remote walk
    def _audit_remote(self, findings: List[Finding]) -> List[_ShardView]:
        from repro.service.remote import parse_route
        from repro.service.store import StoreVersionError

        routes = [p.strip() for p in self.spec.split(",") if p.strip()]
        views: List[_ShardView] = []
        for index, route in enumerate(routes):
            locus = f"shard-{index}"
            try:
                replicas, _params = parse_route(route)
            except (ValueError, StoreVersionError) as exc:
                raise ValueError(f"bad route {route!r}: {exc}") from exc
            views.append(
                self._audit_route(locus, replicas, findings)
            )
        return views

    def _probe_replica(self, replica_spec: str) -> Optional[Dict]:
        """Two read-only RPCs against one replica; None when unreachable."""
        from repro.service.remote import (
            RemoteStore,
            RemoteUnavailable,
            RetryPolicy,
        )
        from repro.service.storeserver import digest_keys

        client = RemoteStore(
            replica_spec,
            timeout_s=self.timeout_s,
            stat_prefix="store.audit.",
            retry=RetryPolicy(attempts=2, base_s=0.05, cap_s=0.5),
        )
        try:
            try:
                probe = client.fetch_keys_digest()
            except RuntimeError:
                # Pre-digest server: pull the keys once and hash locally.
                keys = client.fetch_keys()
                probe = {"digest": digest_keys(keys), "n": len(keys)}
            stats = client.server_stats()
            if stats is None:
                return None
            stats["digest"] = probe["digest"]
            stats["digest_n"] = probe["n"]
            stats["address"] = client.address
            return stats
        except RemoteUnavailable:
            return None
        finally:
            client.close()

    def _audit_route(
        self, locus: str, replicas: List[str], findings: List[Finding]
    ) -> _ShardView:
        view = _ShardView(locus=locus)
        probes: List[Optional[Dict]] = []
        for j, replica_spec in enumerate(replicas):
            probe = self._probe_replica(replica_spec)
            probes.append(probe)
            replica_locus = (
                f"{locus}/replica-{j}" if len(replicas) > 1 else locus
            )
            if probe is None:
                findings.append(Finding(
                    code="replica_unreachable",
                    locus=replica_locus,
                    message=f"replica {replica_spec} did not answer the "
                            f"audit probes",
                    details={"address": replica_spec},
                ))
                continue
            view.fingerprints = sorted(
                set(view.fingerprints) | set(probe.get("fingerprints") or [])
            )
            self._check_server_counters(replica_locus, probe, findings)
            self._check_antientropy(replica_locus, probe, findings)
        reachable = [p for p in probes if p is not None]
        if reachable:
            # The route's logical size: what a failover read would see,
            # i.e. the fullest reachable copy.
            view.entries = max(p["digest_n"] for p in reachable)
            counted = [
                p["non_converged"]
                for p in reachable
                if p.get("non_converged") is not None
            ]
            if counted:
                view.non_converged = max(counted)
        digests = {p["digest"] for p in reachable}
        if len(digests) > 1:
            findings.append(Finding(
                code="replica_divergence",
                locus=locus,
                message=f"replicas of {locus} hold different key sets "
                        f"({len(digests)} distinct digests); anti-entropy "
                        f"or `repro store repair` should converge them",
                details={
                    "replicas": [
                        {
                            "address": p["address"],
                            "digest": p["digest"][:16],
                            "entries": p["digest_n"],
                        }
                        for p in reachable
                    ],
                },
            ))
        return view

    def _check_server_counters(
        self, locus: str, probe: Dict, findings: List[Finding]
    ) -> None:
        stats = probe.get("stats") or {}
        puts = float(stats.get("puts", 0) or 0)
        evictions = float(stats.get("evictions", 0) or 0)
        if puts > 0 and evictions / puts > self.thresholds.eviction_ratio:
            findings.append(Finding(
                code="eviction_pressure",
                locus=locus,
                message=f"{locus} evicted {evictions:.0f} of "
                        f"{puts:.0f} entries put since server start "
                        f"(> {self.thresholds.eviction_ratio:.0%}); its LRU "
                        f"bound is too tight for the working set",
                details={"puts": puts, "evictions": evictions},
            ))
        orphans = probe.get("orphans")
        if isinstance(orphans, (int, float)) and orphans > 0:
            # Server-counted (it can listdir its own disk; we can't over
            # the wire), so a remote audit surfaces the same debris a
            # local walk would.
            findings.append(Finding(
                code="orphan_entries",
                locus=locus,
                message=f"{locus} reports {orphans:.0f} entry file(s) on "
                        f"its disk with no manifest row",
                details={"count": int(orphans)},
            ))
        for stat, code in (
            ("quorum_failures", "elevated_quorum_failures"),
            ("degraded", "elevated_degraded"),
            ("retry_exhausted", "elevated_retry_exhausted"),
        ):
            value = float(stats.get(stat, 0) or 0)
            if value > 0:
                findings.append(Finding(
                    code=code,
                    locus=locus,
                    message=f"{locus} counts {stat}={value:.0f} since "
                            f"server start",
                    details={stat: value},
                ))

    def _check_antientropy(
        self, locus: str, probe: Dict, findings: List[Finding]
    ) -> None:
        status = probe.get("antientropy")
        if not isinstance(status, dict):
            return
        if status.get("paused"):
            findings.append(Finding(
                code="antientropy_paused",
                locus=locus,
                message=f"the anti-entropy loop at {locus} is paused; "
                        f"divergence will not self-heal until resumed",
                details={"status": status},
            ))
        uptime = probe.get("uptime_s")
        interval = float(status.get("interval_s", 0) or 0)
        stalled = not status.get("running", False)
        reason = "its thread is not running"
        if (
            not stalled
            and uptime is not None
            and interval > 0
            and float(status.get("rounds", 0) or 0) == 0
            and float(uptime) > self.thresholds.stall_intervals * interval
        ):
            stalled = True
            reason = (
                f"zero rounds completed in {float(uptime):.0f}s "
                f"(interval {interval:g}s)"
            )
        if stalled:
            findings.append(Finding(
                code="antientropy_stalled",
                locus=locus,
                message=f"the anti-entropy loop at {locus} is stalled: "
                        f"{reason}",
                details={"status": status, "uptime_s": uptime},
            ))
        if float(status.get("skipped_unreachable", 0) or 0) > 0:
            findings.append(Finding(
                code="antientropy_unreachable_peers",
                locus=locus,
                message=f"anti-entropy rounds at {locus} have skipped an "
                        f"unreachable peer "
                        f"{status.get('skipped_unreachable')} time(s)",
                details={
                    "skipped_unreachable": status.get("skipped_unreachable"),
                    "peers": status.get("peers"),
                },
            ))

    # ----------------------------------------------------- fabric probe
    def _audit_fabric(self, spec: str, findings: List[Finding]) -> None:
        """One ``stats`` round trip against a worker fabric: is the front
        door shedding a meaningful share of what it was asked to admit?"""
        from repro.service.remote import RemoteUnavailable, fabric_stats

        try:
            stats = fabric_stats(spec, timeout_s=self.timeout_s)
        except RemoteUnavailable as exc:
            findings.append(Finding(
                code="replica_unreachable",
                locus="fabric",
                message=f"worker fabric {spec} did not answer the stats "
                        f"probe: {exc}",
                details={"address": spec},
            ))
            return
        n_shed = float(stats.get("n_shed", 0) or 0)
        n_dispatched = float(stats.get("n_dispatched", 0) or 0)
        ratio = n_shed / (n_shed + max(1.0, n_dispatched))
        if ratio > self.thresholds.shed_ratio:
            findings.append(Finding(
                code="elevated_load_shedding",
                locus="fabric",
                message=f"the front door shed {n_shed:.0f} request(s) "
                        f"against {n_dispatched:.0f} dispatched part(s) "
                        f"({ratio:.0%} > {self.thresholds.shed_ratio:.0%}); "
                        f"the fleet is undersized for its traffic — add "
                        f"workers, raise --max-queue, or accept the sheds",
                details={
                    "n_shed": n_shed,
                    "n_dispatched": n_dispatched,
                    "ratio": ratio,
                    "workers_connected": stats.get("workers_connected"),
                    "parts_queued": stats.get("parts_queued"),
                },
            ))

    # --------------------------------------------------- fleet-wide checks
    def _check_fleet(
        self, shards: List[_ShardView], findings: List[Finding]
    ) -> None:
        fingerprints = sorted(
            {fp for view in shards for fp in view.fingerprints}
        )
        if len(fingerprints) > 1:
            findings.append(Finding(
                code="fingerprint_drift",
                locus="store",
                message=f"the fleet serves {len(fingerprints)} distinct "
                        f"engine fingerprints; every copy must be produced "
                        f"under one engine/run configuration",
                details={
                    "fingerprints": fingerprints,
                    "by_shard": {
                        view.locus: view.fingerprints
                        for view in shards
                        if view.fingerprints
                    },
                },
            ))
        sized = [view for view in shards if view.entries is not None]
        total = sum(view.entries for view in sized)
        if (
            len(sized) > 1
            and total >= self.thresholds.imbalance_min_entries
        ):
            mean = total / len(sized)
            fullest = max(sized, key=lambda view: view.entries)
            if mean > 0 and fullest.entries / mean > self.thresholds.shard_imbalance:
                findings.append(Finding(
                    code="shard_imbalance",
                    locus=fullest.locus,
                    message=f"{fullest.locus} holds {fullest.entries} "
                            f"entries against a mean of {mean:.1f} "
                            f"(> {self.thresholds.shard_imbalance:g}x); "
                            f"uniform digest ranges cannot produce this — "
                            f"check for mis-routing or a half-done reshard",
                    details={
                        "entries": fullest.entries,
                        "mean": mean,
                        "by_shard": {
                            view.locus: view.entries for view in sized
                        },
                    },
                ))
        counted = [
            view for view in sized if view.non_converged is not None
        ]
        n_entries = sum(view.entries for view in counted)
        n_bad = sum(view.non_converged for view in counted)
        if (
            n_entries > 0
            and n_bad / n_entries > self.thresholds.non_converged_ratio
        ):
            findings.append(Finding(
                code="non_converged",
                locus="store",
                message=f"{n_bad} of {n_entries} entries never converged "
                        f"(> {self.thresholds.non_converged_ratio:.0%}); "
                        f"run `repro store revalidate` in an idle window",
                details={"non_converged": n_bad, "entries": n_entries},
            ))
