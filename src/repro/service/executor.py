"""Worker-pool execution of a batch plan, plus in-flight coalescing.

Three local backends behind one interface (mirroring the ``GrapeEngine`` /
``ModelEngine`` split): ``serial`` runs parts in the calling thread,
``thread`` uses a ``ThreadPoolExecutor`` (GRAPE spends its time in BLAS,
which releases the GIL), ``process`` uses a ``ProcessPoolExecutor`` with
picklable per-part payloads (module-level worker function, engine shipped by
pickle, records shipped back). The same ``map_parts`` seam also crosses
hosts: :class:`repro.service.remote.RemoteExecutor` dispatches the parts
to connected ``repro worker`` processes — any object with ``map_parts``
passes straight through :func:`make_backend`, so the service never knows
where its solves ran. Because every :class:`GroupTask` carries its warm
seed resolved from the batch snapshot (see below), where a part runs can
never change what it produces.

Orthogonally to *where* a part runs, ``RunConfig.batched_grape`` (the
``repro batch --engine grape-batched`` flag) changes *how* a worker runs
it: :func:`run_part` buckets the part's store-seeded tasks by the
engine's ``(dim, hi_steps)`` solve class and drives each bucket through
one cross-pulse batched kernel stream instead of K sequential solves
(see :func:`run_part` and :mod:`repro.qoc.grape_batched` for the exact
rules). The serial loop remains the default and the bit-identity oracle.

Warm-start modes
----------------
``warm="store"`` (service default): every group is seeded from the *store
snapshot taken at batch start* — the most similar persisted pulse below the
similarity threshold, else a deterministic cold start keyed by the group's
canonical key. Pulse content is then a pure function of (group, snapshot,
run config): independent of the partition, the worker count, and the rest of
the batch. That invariant is what keeps a content-addressed store coherent —
the same key stores the same pulse no matter which batch compiled it first —
and it is what the throughput bench's bit-identity assertion checks.

``warm="chain"`` (paper Sec V-D semantics): within a part, each group warm
starts from its MST parent's freshly compiled pulse; a cut edge is a "soft
dependency" — the part root falls back to the store seed / cold start.
Maximal iteration savings, but pulse content then depends on where the
partition cut the tree, so results vary across worker counts. Use it for
experiments, not for populating a shared store.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import PulseLibrary
from repro.core.dynamic import best_library_seeds
from repro.core.engines import CompileRecord, compile_with_engine
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.qoc.pulse import Pulse
from repro.service.planner import BatchPlan

WARM_MODES = ("store", "chain")


@dataclass
class GroupTask:
    """One group's compile order within a part (picklable)."""

    group: GateGroup
    seed_tag: str  # deterministic: derived from the canonical key
    parent_local: Optional[int] = None  # chain mode: index within the part
    seed_pulse: Optional[Pulse] = None  # store-snapshot warm seed
    seed_source: Optional[GateGroup] = None


@dataclass
class PartOutcome:
    """What one worker hands back for its part."""

    worker: int
    records: List[CompileRecord]
    wall_s: float
    perf_stages: Dict[str, float]
    perf_counters: Dict[str, int]
    queue_wait_s: float = 0.0  # submission -> first instruction on a worker


def seed_tag_for(group: GateGroup) -> str:
    """Deterministic per-group RNG tag: canonical key, nothing positional."""
    from repro.service.store import key_digest

    return f"svc:{key_digest(group.key())[:24]}"


def _batched_engine(engine) -> bool:
    """True when the engine opted into cross-pulse batched GRAPE."""
    run = getattr(engine, "run", None)
    return bool(getattr(run, "batched_grape", False)) and hasattr(
        engine, "compile_group_batch"
    )


def run_part(
    engine,
    worker: int,
    tasks: Sequence[GroupTask],
    submitted_at: Optional[float] = None,
) -> PartOutcome:
    """Compile one part (module-level so process pools can run it).

    Default path: tasks compile one by one, in order — this serial loop is
    the bit-identity oracle every other execution strategy is checked
    against. When the engine carries ``RunConfig.batched_grape`` (the
    ``repro batch --engine grape-batched`` flag) and exposes
    ``compile_group_batch``, the part's store-seeded tasks are bucketed by
    the engine's ``(dim, hi_steps)`` solve class and each bucket of two or
    more solves runs through one batched kernel stream
    (:mod:`repro.qoc.grape_batched`) — warm seeds flow in per-solve exactly
    as on the serial path, and per-solve target/budget semantics are
    unchanged (only 1e-9-level kernel reassociation differs, which is why
    the batched path is opt-in rather than the default). Chain-mode tasks
    (``parent_local`` set) stay serial: a child needs its parent's freshly
    compiled pulse, a dependency batching cannot honour. Singleton buckets
    stay serial too — below two solves the stream is pure overhead.

    ``submitted_at`` is a ``time.perf_counter`` reading taken when the part
    was handed to the pool; the gap to the part's first instruction is the
    pool queue wait (how long the part sat behind other parts), reported
    per worker as ``execute.worker<k>.queue_wait``. On Linux
    ``perf_counter`` is CLOCK_MONOTONIC, comparable across the processes
    of a process pool; elsewhere treat cross-process waits as approximate.
    """
    start = time.perf_counter()
    queue_wait = max(0.0, start - submitted_at) if submitted_at is not None else 0.0
    solve_s = 0.0
    stages: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    records: List[Optional[CompileRecord]] = [None] * len(tasks)
    if _batched_engine(engine):
        batched_s = _run_batched_buckets(engine, tasks, records, counters)
        if batched_s is not None:
            stages["solve.batched"] = batched_s
            solve_s += batched_s
    for index, task in enumerate(tasks):
        if records[index] is not None:  # solved by a batched bucket
            continue
        warm_pulse, warm_source = task.seed_pulse, task.seed_source
        if task.parent_local is not None:
            # Chain mode: the parent compiled earlier in this same part. A
            # ModelEngine parent has no pulse; its group still prices the
            # warm ratio via ``warm_source``.
            warm_pulse = records[task.parent_local].pulse
            warm_source = tasks[task.parent_local].group
        t0 = time.perf_counter()
        record = compile_with_engine(
            engine,
            task.group,
            warm_pulse=warm_pulse,
            warm_source=warm_source,
            seed_tag=task.seed_tag,
        )
        solve_s += time.perf_counter() - t0
        records[index] = record
    iterations = sum(record.iterations for record in records)
    stages["solve"] = solve_s
    counters.update({"groups": len(tasks), "iterations": iterations})
    return PartOutcome(
        worker=worker,
        records=list(records),
        wall_s=time.perf_counter() - start,
        perf_stages=stages,
        perf_counters=counters,
        queue_wait_s=queue_wait,
    )


def _run_batched_buckets(
    engine,
    tasks: Sequence[GroupTask],
    records: List[Optional[CompileRecord]],
    counters: Dict[str, int],
) -> Optional[float]:
    """Solve the part's batchable buckets; fill ``records`` in place.

    Returns the wall seconds spent in batched solves (None when nothing
    was batchable), and accumulates the stream-occupancy counters
    (``grape.batched.batch_width`` = sum of per-round widths,
    ``grape.batched.rounds``, ``grape.batched.narrowings``) the batch
    report surfaces per worker.
    """
    from repro.qoc.grape_batched import BatchStats

    buckets: Dict[Tuple[int, int], List[int]] = {}
    for index, task in enumerate(tasks):
        if task.parent_local is not None:  # chain dependency: stays serial
            continue
        solve_class = engine.solve_class(task.group)
        if solve_class is None:  # virtual diagonal: trivial, stays serial
            continue
        buckets.setdefault(solve_class, []).append(index)
    batchable = [
        indices for _, indices in sorted(buckets.items()) if len(indices) >= 2
    ]
    if not batchable:
        return None
    stats = BatchStats()
    batched_s = 0.0
    n_batched = 0
    for indices in batchable:
        t0 = time.perf_counter()
        bucket_records = engine.compile_group_batch(
            [tasks[i].group for i in indices],
            warm_pulses=[tasks[i].seed_pulse for i in indices],
            seed_tags=[tasks[i].seed_tag for i in indices],
            stats=stats,
        )
        batched_s += time.perf_counter() - t0
        for i, record in zip(indices, bucket_records):
            records[i] = record
        n_batched += len(indices)
    counters["grape.batched.groups"] = n_batched
    counters["grape.batched.buckets"] = len(batchable)
    counters["grape.batched.batch_width"] = stats.width_sum
    counters["grape.batched.rounds"] = stats.rounds
    counters["grape.batched.narrowings"] = stats.narrowings
    return batched_s


def _run_part_payload(payload: Tuple) -> PartOutcome:
    """Process-pool entry point: unpack (engine, worker, tasks, submitted)."""
    engine, worker, tasks, submitted_at = payload
    return run_part(engine, worker, tasks, submitted_at)


# ------------------------------------------------------------------ backends
class SerialBackend:
    """Parts run one after another in the calling thread."""

    name = "serial"
    accepts_weights = True  # modelled part weights; local pools ignore them

    def map_parts(
        self,
        engine,
        parts: Sequence[Tuple[int, List[GroupTask]]],
        weights: Optional[Sequence[float]] = None,
    ) -> List[PartOutcome]:
        submitted = time.perf_counter()
        return [
            run_part(engine, worker, tasks, submitted)
            for worker, tasks in parts
        ]


class ThreadBackend:
    """One OS thread per part; BLAS releases the GIL during solves."""

    name = "thread"
    accepts_weights = True

    def __init__(self, n_workers: int):
        self.n_workers = max(1, int(n_workers))

    def map_parts(
        self,
        engine,
        parts: Sequence[Tuple[int, List[GroupTask]]],
        weights: Optional[Sequence[float]] = None,
    ) -> List[PartOutcome]:
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [
                pool.submit(run_part, engine, worker, tasks, time.perf_counter())
                for worker, tasks in parts
            ]
            return [f.result() for f in futures]


class ProcessBackend:
    """One OS process per part; payloads and records travel by pickle."""

    name = "process"
    accepts_weights = True

    def __init__(self, n_workers: int):
        self.n_workers = max(1, int(n_workers))

    def map_parts(
        self,
        engine,
        parts: Sequence[Tuple[int, List[GroupTask]]],
        weights: Optional[Sequence[float]] = None,
    ) -> List[PartOutcome]:
        if len(parts) <= 1:  # don't pay process startup for a serial plan
            return SerialBackend().map_parts(engine, parts)
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [
                pool.submit(
                    _run_part_payload,
                    (engine, worker, tasks, time.perf_counter()),
                )
                for worker, tasks in parts
            ]
            return [f.result() for f in futures]


def make_backend(spec, n_workers: int):
    """'serial' | 'thread' | 'process' | an object with ``map_parts``.

    A remote fabric is passed as the object itself (one long-lived
    :class:`~repro.service.remote.RemoteExecutor` serves every batch — a
    string spec here would leak a fresh listener per batch).
    """
    if hasattr(spec, "map_parts"):
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "thread":
        return ThreadBackend(n_workers)
    if spec == "process":
        return ProcessBackend(n_workers)
    raise ValueError(
        f"unknown backend {spec!r}; have serial/thread/process, or pass "
        f"an object with map_parts (e.g. a RemoteExecutor)"
    )


# ------------------------------------------------------------ pool executor
class WorkerPoolExecutor:
    """Runs a :class:`BatchPlan`'s worker plans on a backend.

    Returns records aligned with ``plan.uncovered``; wires per-worker wall
    clock, solve time, and iteration counts into the supplied
    :class:`PerfRecorder` under ``execute.worker<k>.*`` names.
    """

    def __init__(
        self,
        engine,
        backend="thread",
        n_workers: int = 4,
        similarity: str = "fidelity1",
        warm: str = "store",
        seed_threshold: float = 0.5,
        perf: Optional[PerfRecorder] = None,
    ) -> None:
        if warm not in WARM_MODES:
            raise ValueError(f"warm must be one of {WARM_MODES}, got {warm!r}")
        self.engine = engine
        self.n_workers = max(1, int(n_workers))
        self.backend = make_backend(backend, self.n_workers)
        self.similarity = similarity
        self.warm = warm
        self.seed_threshold = seed_threshold
        self.perf = recorder_or_null(perf)

    def run(
        self, plan: BatchPlan, snapshot: PulseLibrary
    ) -> List[CompileRecord]:
        """Compile ``plan.uncovered``; result index i belongs to vertex i."""
        return self.run_indices(
            plan, snapshot, [i for p in plan.worker_plans for i in p.indices]
        )

    def run_indices(
        self,
        plan: BatchPlan,
        snapshot: PulseLibrary,
        wanted: Sequence[int],
    ) -> List[CompileRecord]:
        """Compile only ``wanted`` vertices (others coalesced elsewhere).

        Returns a dense list aligned with ``plan.uncovered``; vertices not in
        ``wanted`` get ``None`` slots the caller fills from coalesced futures.

        ``snapshot`` is the frozen warm-seed source: a
        :class:`~repro.core.cache.PulseLibrary`, or any store backend with
        a ``snapshot()`` method — a sharded store freezes per-shard
        snapshots (each under its own shard lock) and merges them here.
        """
        if hasattr(snapshot, "snapshot"):  # a StoreBackend: freeze it now
            snapshot = snapshot.snapshot()
        wanted_set = set(wanted)
        parts: List[Tuple[int, List[GroupTask]]] = []
        part_weights: List[float] = []
        index_map: List[List[int]] = []
        with self.perf.stage("execute.seed"):
            # Heaviest parts first (LPT): the pool drains submissions in
            # order, and this is the schedule BatchPlan.makespan models.
            ordered = sorted(plan.worker_plans, key=lambda p: -p.weight)
            part_indices: List[Tuple[int, List[int]]] = []
            chain_parent: Dict[int, Optional[int]] = {}
            for worker_plan in ordered:
                indices = [i for i in worker_plan.indices if i in wanted_set]
                if not indices:
                    continue
                part_indices.append((worker_plan.worker, indices))
                local_of = {vertex: i for i, vertex in enumerate(indices)}
                for vertex in indices:
                    parent = plan.sequence.parent.get(vertex, -1)
                    chain_parent[vertex] = (
                        local_of[parent]
                        if self.warm == "chain" and parent in local_of
                        else None
                    )
            # Store seeds only for vertices that will consume one — in chain
            # mode that is just the part roots, not the whole batch.
            seeds = self._snapshot_seeds(
                plan,
                snapshot,
                {v for v, p in chain_parent.items() if p is None},
            )
            for worker, indices in part_indices:
                tasks = self._tasks_for_part(plan, indices, chain_parent, seeds)
                parts.append((worker, tasks))
                part_weights.append(
                    sum(plan.weights.get(v, 1.0) for v in indices)
                )
                index_map.append(indices)
        with self.perf.stage("execute.solve"):
            # Modelled part weights ride along for backends that schedule
            # (the remote fabric's EWMA placement); foreign backends with
            # the plain 2-arg map_parts still work unchanged.
            if getattr(self.backend, "accepts_weights", False):
                outcomes = self.backend.map_parts(
                    self.engine, parts, weights=part_weights
                )
            else:
                outcomes = self.backend.map_parts(self.engine, parts)
        records: List[Optional[CompileRecord]] = [None] * len(plan.uncovered)
        for indices, outcome in zip(index_map, outcomes):
            for local, vertex in enumerate(indices):
                records[vertex] = outcome.records[local]
            prefix = f"execute.worker{outcome.worker}."
            self.perf.record(prefix + "wall", outcome.wall_s)
            self.perf.record(prefix + "queue_wait", outcome.queue_wait_s)
            for name, seconds in outcome.perf_stages.items():
                self.perf.record(prefix + name, seconds)
            for name, value in outcome.perf_counters.items():
                self.perf.count(prefix + name, value)
        self.perf.count("execute.parts", len(parts))
        return records

    # ----------------------------------------------------------------- impl
    def _snapshot_seeds(
        self,
        plan: BatchPlan,
        snapshot: PulseLibrary,
        wanted: "set[int]",
    ) -> Dict[int, Tuple[Optional[Pulse], Optional[GateGroup]]]:
        """Store-snapshot warm seeds for every wanted vertex, batched.

        One Gram-matrix distance block per dimension class (via
        :func:`best_library_seeds`) instead of a serial per-pair scan — with
        a grown store the scan would dominate ``execute.seed`` and cap the
        parallel speedup the partition exists to deliver.
        """
        vertices = sorted(wanted)
        seeds = best_library_seeds(
            [plan.uncovered[v] for v in vertices],
            snapshot,
            self.similarity,
            self.seed_threshold,
        )
        return dict(zip(vertices, seeds))

    def _tasks_for_part(
        self,
        plan: BatchPlan,
        indices: Sequence[int],
        chain_parent: Dict[int, Optional[int]],
        seeds: Dict[int, Tuple[Optional[Pulse], Optional[GateGroup]]],
    ) -> List[GroupTask]:
        tasks: List[GroupTask] = []
        for vertex in indices:
            group = plan.uncovered[vertex]
            parent_local = chain_parent[vertex]
            seed_pulse = seed_source = None
            if parent_local is None:
                seed_pulse, seed_source = seeds[vertex]
            tasks.append(
                GroupTask(
                    group=group,
                    seed_tag=seed_tag_for(group),
                    parent_local=parent_local,
                    seed_pulse=seed_pulse,
                    seed_source=seed_source,
                )
            )
        return tasks


# -------------------------------------------------------------- coalescing
class GroupCoalescer:
    """In-flight dedup across concurrent batches: one compile per key.

    The first caller to :meth:`claim` a key owns its compilation and must
    :meth:`resolve` (or :meth:`fail`) it; later callers get a
    :class:`~concurrent.futures.Future` that yields the owner's record.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight: Dict[bytes, Future] = {}
        self.coalesced = 0

    def claim(self, key: bytes) -> Tuple[bool, Future]:
        """(owned, future): owned=True means the caller must compile+resolve."""
        with self._lock:
            future = self._in_flight.get(key)
            if future is not None:
                self.coalesced += 1
                return False, future
            future = Future()
            self._in_flight[key] = future
            return True, future

    def in_flight_keys(self) -> "set[bytes]":
        """Keys currently claimed — the store's eviction no-touch list.

        A claimed key is either being solved (its warm-start seed must
        stay resident) or was just salvaged from the live store (waiters
        will read it back); evicting it mid-batch would break both.
        """
        with self._lock:
            return set(self._in_flight)

    def resolve(self, key: bytes, record: CompileRecord) -> None:
        with self._lock:
            future = self._in_flight.pop(key, None)
        if future is not None:
            future.set_result(record)

    def fail(self, key: bytes, error: BaseException) -> None:
        with self._lock:
            future = self._in_flight.pop(key, None)
        if future is not None:
            future.set_exception(error)
