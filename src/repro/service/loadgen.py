"""``repro loadgen``: the load/soak harness with run tables and SLO gates.

Every performance claim before this module came from single-run anecdotes.
The harness turns "it felt fast" into a **run table**: N concurrent TCP
clients replay a declarative traffic scenario against ``repro serve
--async``, and every run × repetition becomes one row of ``run_table.csv``
(throughput, latency percentiles, solves vs store hits, sheds, failovers,
quorum failures, steals — see RUN_TABLE_COLUMNS.md at the repo root for
the full column reference) plus a per-run ``perf.json`` holding the raw
evidence (client latencies, the server's ``stats`` snapshots before and
after the measured window, fabric scheduler counters, the ``final_stats``
line the server emits on SIGTERM).

Scenario anatomy (:class:`Scenario`):

* **mix** — a named traffic mix from
  :data:`repro.workloads.mixes.TRAFFIC_MIXES` or an inline
  ``[(program, weight), ...]`` list; every program name is validated
  against the serve protocol's resolver at spec time, so a typo dies
  before any process spawns.
* **arrival** — ``closed`` (each client sends, waits, sends again: the
  classic closed loop), ``poisson`` (open loop: each client fires on a
  pre-drawn exponential schedule regardless of responses — the arrival
  times are a pure function of the seed, so a run is replayable), or
  ``burst`` (send ``burst_size`` back to back, drain, sleep
  ``burst_gap_s``, repeat).
* **store_state** — ``cold`` (fresh store), ``warm`` (the mix's programs
  are batch-compiled into the store before measurement), ``mixed``
  (half of them are).
* **topology** — ``shards``, ``workers`` (a local pool, or a remote
  fabric of ``repro worker`` subprocesses when ``fabric=True``),
  ``replicas`` (2 spawns a ``w=majority`` replica pair of ``repro store
  serve`` processes).
* **faults** — mid-run chaos, reusing the patterns proven in
  ``tests/test_service_scheduler.py`` and the CI chaos-smoke job:
  ``kill_replica`` (SIGKILL the first replica, revive it later with the
  anti-entropy loop pointed at the survivor), ``churn_worker`` (SIGKILL
  a fabric worker, enroll a replacement), ``stall_worker`` (a raw
  socket enrolls, accepts one part, and never answers until released —
  the scheduler must steal/reassign around it).

**Wrong answers** are detected without an oracle: the engines are
deterministic, so every ``ok`` response for the same program within one
run must agree on ``(overall_latency_ns, n_groups, n_unique)``.
Responses outside their program's majority signature count as
``wrong_answers`` — the one number that must stay 0 through any fault.

**SLO gating** (``repro loadgen --gate slo.json``) evaluates floor/
ceiling checks over every row and exits in the style of ``repro store
audit --fail-on``: 0 clean or below the gate, else 1/4/5/6 for a worst
violation of info/warn/error/critical (wrong answers and quorum
failures are critical; throughput/latency/error-rate breaches are
errors; shed-rate breaches warn).

The chain-mode study rides the same run table: ``repro loadgen
--chain-study`` replays the small suite sequentially under
``warm="store"`` vs ``warm="chain"`` (paper Sec V-D) and lands one row
per variant × repetition, making the iteration-vs-latency tradeoff a
table instead of a docstring promise.
"""

from __future__ import annotations

import csv
import json
import math
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, IO, List, Optional, Sequence, Tuple

from repro.service.audit import EXIT_BY_SEVERITY, SEVERITIES, severity_rank

ARRIVALS = ("closed", "poisson", "burst")
STORE_STATES = ("cold", "warm", "mixed")
FAULT_KINDS = ("kill_replica", "churn_worker", "stall_worker")

#: One row per run × repetition; see RUN_TABLE_COLUMNS.md for the full
#: per-column reference (meaning, source counter, units).
RUN_TABLE_COLUMNS = (
    "scenario", "run", "rep", "arrival", "store_state", "clients",
    "shards", "workers", "replicas", "duration_s", "requests", "ok",
    "errors", "sheds", "wrong_answers", "throughput_rps",
    "p50_latency_ms", "p95_latency_ms", "p99_latency_ms",
    "mean_latency_ms", "iterations", "solves", "store_hits",
    "store_misses", "coalesced", "failovers", "degraded",
    "quorum_failures", "steals", "reassignments", "error_rate",
    "shed_rate",
)


# ---------------------------------------------------------------- scenarios
@dataclass(frozen=True)
class FaultSpec:
    """One mid-run fault: inject at ``at_s`` into the measured window,
    undo (revive / replace / release) ``duration_s`` later."""

    kind: str
    at_s: float
    duration_s: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{FAULT_KINDS}"
            )
        if self.at_s < 0 or self.duration_s < 0:
            raise ValueError("fault times must be >= 0")


@dataclass(frozen=True)
class Scenario:
    """One declarative load scenario (validated eagerly, refused loudly)."""

    name: str
    mix: object = "qft-small"  # registry name or [(program, weight), ...]
    arrival: str = "closed"
    clients: int = 2
    rate_rps: float = 8.0  # poisson only: whole-system arrival rate
    burst_size: int = 4
    burst_gap_s: float = 0.5
    duration_s: float = 10.0
    max_requests: Optional[int] = None  # budget alternative to duration
    store_state: str = "cold"
    shards: int = 1
    workers: int = 2
    fabric: bool = False  # True: --workers remote + worker subprocesses
    replicas: int = 1  # 2: a w=majority replica pair of store servers
    max_queue: Optional[int] = None  # admission bound on the front door
    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 7

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival {self.arrival!r}; known: {ARRIVALS}"
            )
        if self.store_state not in STORE_STATES:
            raise ValueError(
                f"unknown store_state {self.store_state!r}; "
                f"known: {STORE_STATES}"
            )
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.duration_s <= 0 and self.max_requests is None:
            raise ValueError("need duration_s > 0 or max_requests")
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.shards < 1 or self.workers < 1 or self.replicas < 1:
            raise ValueError("shards/workers/replicas must be >= 1")
        if self.replicas > 1 and self.shards > 1:
            raise ValueError(
                "replicas > 1 needs shards == 1 (one replicated route)"
            )
        for fault in self.faults:
            if fault.kind == "kill_replica" and self.replicas < 2:
                raise ValueError("kill_replica needs replicas >= 2")
            if fault.kind in ("churn_worker", "stall_worker") and not self.fabric:
                raise ValueError(f"{fault.kind} needs fabric=True")
        self.programs_and_weights()  # resolve mix + validate every program

    def programs_and_weights(self) -> Tuple[List[str], List[float]]:
        """The mix as parallel lists, every program resolver-validated."""
        from repro.service.protocol import resolve_program
        from repro.workloads.mixes import traffic_mix

        pairs = traffic_mix(self.mix) if isinstance(self.mix, str) else [
            (str(name), float(weight)) for name, weight in self.mix
        ]
        if not pairs:
            raise ValueError("traffic mix is empty")
        names, weights = zip(*pairs)
        if any(w <= 0 for w in weights):
            raise ValueError(f"mix weights must be > 0: {pairs}")
        for name in names:
            resolve_program(name)  # ProtocolError on a bad program name
        return list(names), list(weights)


#: Named scenarios the CLI accepts by name (`repro loadgen --scenario
#: smoke`). A JSON file path works too — its keys are Scenario fields.
SCENARIOS: Dict[str, Scenario] = {
    # Fast local sanity run: no subprocess topology beyond the server.
    "smoke": Scenario(
        name="smoke", mix="qft-small", arrival="closed", clients=2,
        duration_s=10.0, shards=2, workers=2,
    ),
    # The CI loadgen-smoke job: 30 s closed loop against a 2-worker
    # fabric over a w=majority replica pair, with the *first* replica
    # (the preferred read target, so failovers are visible) killed at
    # t=6 s and revived 8 s later with anti-entropy pointed at the
    # survivor. Gated on slo/loadgen-smoke.json.
    "smoke-replica-kill": Scenario(
        name="smoke-replica-kill", mix="qft-small", arrival="closed",
        clients=4, duration_s=30.0, shards=1, workers=2, fabric=True,
        replicas=2,
        faults=(FaultSpec("kill_replica", at_s=6.0, duration_s=8.0),),
    ),
    # The nightly soak: longer mixed-state run, open-loop poisson
    # arrivals, worker churn plus a stalled socket mid-run.
    "soak-mixed": Scenario(
        name="soak-mixed", mix="suite-mixed", arrival="poisson",
        clients=8, rate_rps=4.0, duration_s=180.0, store_state="mixed",
        shards=1, workers=2, fabric=True, replicas=2,
        faults=(
            FaultSpec("kill_replica", at_s=30.0, duration_s=20.0),
            FaultSpec("churn_worker", at_s=75.0, duration_s=10.0),
            FaultSpec("stall_worker", at_s=120.0, duration_s=15.0),
        ),
    ),
    # Burst arrivals against a bounded admission queue: sheds must be
    # typed and admitted requests must all answer.
    "burst-shed": Scenario(
        name="burst-shed", mix="qft-small", arrival="burst", clients=4,
        burst_size=6, burst_gap_s=0.25, duration_s=15.0, shards=2,
        workers=2, max_queue=8,
    ),
}


def scenario_from_spec(spec: Dict) -> Scenario:
    """Build a :class:`Scenario` from a JSON-shaped dict, loudly."""
    if not isinstance(spec, dict):
        raise ValueError("scenario spec must be a JSON object")
    known = set(Scenario.__dataclass_fields__)
    unknown = set(spec) - known
    if unknown:
        raise ValueError(
            f"unknown scenario field(s) {sorted(unknown)}; "
            f"known fields: {sorted(known)}"
        )
    if "name" not in spec:
        raise ValueError("scenario spec needs a 'name'")
    faults = tuple(
        FaultSpec(**f) if isinstance(f, dict) else f
        for f in spec.get("faults", ())
    )
    fields = dict(spec, faults=faults)
    # JSON has no tuples: normalize an inline mix of [name, weight] lists.
    if isinstance(fields.get("mix"), list):
        fields["mix"] = [tuple(pair) for pair in fields["mix"]]
    return Scenario(**fields)


def load_scenario(ref: str) -> Scenario:
    """Resolve a CLI ``--scenario`` value: registry name or JSON file."""
    if ref in SCENARIOS:
        return SCENARIOS[ref]
    if ref.endswith(".json") or os.path.sep in ref:
        with open(ref) as handle:
            return scenario_from_spec(json.load(handle))
    raise ValueError(
        f"unknown scenario {ref!r}; named scenarios: {sorted(SCENARIOS)} "
        f"(or pass a .json spec file)"
    )


# ------------------------------------------------------------- arithmetic
def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (numpy's default), q in [0, 100].

    Kept dependency-free and exact so the run table's p50/p95/p99 columns
    have one pinned definition a test can check against a known
    distribution.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        raise ValueError("percentile of an empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def poisson_arrivals(rate_rps: float, duration_s: float, rng) -> List[float]:
    """Open-loop arrival offsets: exponential inter-arrivals at
    ``rate_rps``, clipped to ``duration_s``. Pure function of the RNG
    state — a seeded run replays the exact same schedule."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    offsets: List[float] = []
    t = rng.expovariate(rate_rps)
    while t < duration_s:
        offsets.append(t)
        t += rng.expovariate(rate_rps)
    return offsets


def _weighted_pick(names: Sequence[str], cumulative: Sequence[float], rng) -> str:
    x = rng.random() * cumulative[-1]
    for name, edge in zip(names, cumulative):
        if x < edge:
            return name
    return names[-1]


def _cumulative(weights: Sequence[float]) -> List[float]:
    edges: List[float] = []
    total = 0.0
    for w in weights:
        total += w
        edges.append(total)
    return edges


# ----------------------------------------------------------------- traffic
@dataclass
class TrafficResult:
    """Client-side outcome of one measured window (all clients merged)."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    sheds: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    iterations: int = 0
    duration_s: float = 0.0
    # program -> Counter of (overall_latency_ns, n_groups, n_unique):
    # deterministic engines must answer one signature per program.
    signatures: Dict[str, Counter] = field(default_factory=dict)

    def merge(self, other: "TrafficResult") -> None:
        self.requests += other.requests
        self.ok += other.ok
        self.errors += other.errors
        self.sheds += other.sheds
        self.latencies_ms.extend(other.latencies_ms)
        self.iterations += other.iterations
        for program, counts in other.signatures.items():
            self.signatures.setdefault(program, Counter()).update(counts)

    @property
    def wrong_answers(self) -> int:
        """Ok responses disagreeing with their program's majority
        signature — with deterministic engines, any disagreement means a
        client was served a wrong (stale / corrupted / misrouted)
        answer."""
        wrong = 0
        for counts in self.signatures.values():
            total = sum(counts.values())
            wrong += total - max(counts.values())
        return wrong


class _Recorder:
    """Per-client accounting (single-threaded per client)."""

    def __init__(self) -> None:
        self.result = TrafficResult()

    def sent(self) -> None:
        self.result.requests += 1

    def answered(self, program: str, payload: Dict, latency_s: float) -> None:
        if payload.get("overloaded"):
            self.result.sheds += 1
            return
        if not payload.get("ok"):
            self.result.errors += 1
            return
        self.result.ok += 1
        self.result.latencies_ms.append(latency_s * 1e3)
        self.result.iterations += int(payload.get("compile_iterations", 0))
        signature = (
            payload.get("overall_latency_ns"),
            payload.get("n_groups"),
            payload.get("n_unique"),
        )
        self.result.signatures.setdefault(program, Counter())[signature] += 1

    def lost(self, n: int = 1) -> None:
        self.result.errors += n


def _connect(host: str, port: int, timeout_s: float = 30.0):
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.settimeout(timeout_s)
    return sock


def _send_line(stream: IO[bytes], payload: Dict) -> None:
    stream.write((json.dumps(payload) + "\n").encode())
    stream.flush()


def _closed_client(
    host: str, port: int, scenario: Scenario, index: int,
    deadline: float, quota: Optional[int], recorder: _Recorder,
) -> None:
    import random

    rng = random.Random((scenario.seed, "client", index).__hash__() & 0x7FFFFFFF)
    names, weights = scenario.programs_and_weights()
    edges = _cumulative(weights)
    with _connect(host, port, timeout_s=120.0) as sock:
        with sock.makefile("rwb") as stream:
            n = 0
            while time.monotonic() < deadline and (quota is None or n < quota):
                name = _weighted_pick(names, edges, rng)
                start = time.monotonic()
                _send_line(stream, {"id": f"c{index}-{n}", "name": name})
                recorder.sent()
                n += 1
                line = stream.readline()
                if not line:
                    recorder.lost()
                    return
                payload = json.loads(line)
                recorder.answered(name, payload, time.monotonic() - start)
                if payload.get("overloaded"):
                    # Back off for the server's hint (bounded: a soak
                    # must keep offering load, not sleep through it).
                    time.sleep(min(float(payload.get("retry_after_s", 0.1)), 0.5))


def _open_client(
    host: str, port: int, scenario: Scenario, index: int,
    measure_start: float, recorder: _Recorder, drain_s: float = 30.0,
) -> None:
    import random

    rng = random.Random((scenario.seed, "client", index).__hash__() & 0x7FFFFFFF)
    names, weights = scenario.programs_and_weights()
    edges = _cumulative(weights)
    schedule = poisson_arrivals(
        scenario.rate_rps / scenario.clients, scenario.duration_s, rng
    )
    pending: Dict[str, Tuple[str, float]] = {}
    lock = threading.Lock()
    done = threading.Event()

    with _connect(host, port, timeout_s=drain_s) as sock:
        with sock.makefile("rwb") as stream:

            def reader() -> None:
                while True:
                    try:
                        line = stream.readline()
                    except (OSError, ValueError):
                        return
                    if not line:
                        return
                    payload = json.loads(line)
                    with lock:
                        sent = pending.pop(str(payload.get("id")), None)
                    if sent is None:
                        continue  # a command echo or unknown id
                    name, at = sent
                    recorder.answered(name, payload, time.monotonic() - at)
                    with lock:
                        if done.is_set() and not pending:
                            return

            reader_thread = threading.Thread(target=reader, daemon=True)
            reader_thread.start()
            for n, offset in enumerate(schedule):
                now = time.monotonic()
                due = measure_start + offset
                if due > now:
                    time.sleep(due - now)
                request_id = f"c{index}-{n}"
                with lock:
                    pending[request_id] = (None, 0.0)  # placeholder
                name = _weighted_pick(names, edges, rng)
                at = time.monotonic()
                with lock:
                    pending[request_id] = (name, at)
                _send_line(stream, {"id": request_id, "name": name})
                recorder.sent()
            done.set()
            reader_thread.join(timeout=drain_s)
            with lock:
                recorder.lost(len(pending))  # never answered within drain
                pending.clear()


def _burst_client(
    host: str, port: int, scenario: Scenario, index: int,
    deadline: float, recorder: _Recorder,
) -> None:
    import random

    rng = random.Random((scenario.seed, "client", index).__hash__() & 0x7FFFFFFF)
    names, weights = scenario.programs_and_weights()
    edges = _cumulative(weights)
    with _connect(host, port, timeout_s=120.0) as sock:
        with sock.makefile("rwb") as stream:
            n = 0
            while time.monotonic() < deadline:
                burst: List[Tuple[str, str, float]] = []
                for _ in range(scenario.burst_size):
                    name = _weighted_pick(names, edges, rng)
                    request_id = f"c{index}-{n}"
                    n += 1
                    burst.append((request_id, name, time.monotonic()))
                    _send_line(stream, {"id": request_id, "name": name})
                    recorder.sent()
                by_id = {rid: (name, at) for rid, name, at in burst}
                for _ in range(len(burst)):
                    line = stream.readline()
                    if not line:
                        recorder.lost(len(by_id))
                        return
                    payload = json.loads(line)
                    sent = by_id.pop(str(payload.get("id")), None)
                    if sent is None:
                        continue
                    name, at = sent
                    recorder.answered(name, payload, time.monotonic() - at)
                time.sleep(scenario.burst_gap_s)


def drive(host: str, port: int, scenario: Scenario) -> TrafficResult:
    """Replay one scenario's traffic from ``scenario.clients`` threads.

    Pure client side: works against any serving address (the in-process
    server the tests/benches spin up, or the subprocess topology
    :class:`ScenarioHarness` orchestrates). Returns the merged
    :class:`TrafficResult`; client thread crashes surface as errors, not
    hangs.
    """
    recorders = [_Recorder() for _ in range(scenario.clients)]
    measure_start = time.monotonic()
    deadline = measure_start + (
        scenario.duration_s if scenario.max_requests is None
        else max(scenario.duration_s, 120.0)
    )
    quota: Optional[int] = None
    if scenario.max_requests is not None:
        quota = math.ceil(scenario.max_requests / scenario.clients)

    def runner(index: int) -> None:
        try:
            if scenario.arrival == "closed":
                _closed_client(
                    host, port, scenario, index, deadline, quota,
                    recorders[index],
                )
            elif scenario.arrival == "poisson":
                _open_client(
                    host, port, scenario, index, measure_start,
                    recorders[index],
                )
            else:
                _burst_client(
                    host, port, scenario, index, deadline, recorders[index]
                )
        except (OSError, ValueError, json.JSONDecodeError):
            recorders[index].lost()

    threads = [
        threading.Thread(target=runner, args=(i,), daemon=True)
        for i in range(scenario.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        # Generous join bound: a wedged server must fail the run, not
        # hang the harness (the stragglers' requests count as errors).
        thread.join(timeout=scenario.duration_s + 300.0)
    merged = TrafficResult()
    for recorder in recorders:
        merged.merge(recorder.result)
    merged.duration_s = time.monotonic() - measure_start
    return merged


# ------------------------------------------------------------ server admin
def server_stats(host: str, port: int, timeout_s: float = 30.0) -> Dict:
    """One ``{"cmd": "stats"}`` round trip against the async front door."""
    with _connect(host, port, timeout_s=timeout_s) as sock:
        with sock.makefile("rwb") as stream:
            _send_line(stream, {"id": "loadgen-stats", "cmd": "stats"})
            line = stream.readline()
    if not line:
        raise ConnectionError("server closed without answering stats")
    return json.loads(line)


def _counters_delta(before: Dict, after: Dict) -> Dict[str, float]:
    """after - before for every shared numeric key (one level deep)."""
    delta: Dict[str, float] = {}
    for key, value in after.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            delta[key] = value - before.get(key, 0)
    return delta


# ------------------------------------------------------------ orchestration
def _repro_env() -> Dict[str, str]:
    """Subprocess env with this repro's src dir first on PYTHONPATH."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


class ScenarioHarness:
    """Spawn the topology one scenario run needs, inject its faults,
    tear it all down with the logs kept.

    Layout under ``run_dir``: ``logs/`` (every subprocess's stderr, the
    post-mortem artifact CI uploads on failure) and the caller-written
    ``perf.json``. The server itself is stopped with SIGTERM — the
    closing ``final_stats`` line it prints (see
    :mod:`repro.service.asyncserve`) is captured into the harness's
    ``final_stats``.
    """

    def __init__(self, scenario: Scenario, run_dir: str) -> None:
        self.scenario = scenario
        self.run_dir = run_dir
        self.log_dir = os.path.join(run_dir, "logs")
        os.makedirs(self.log_dir, exist_ok=True)
        self.env = _repro_env()
        self.replica_procs: List[Optional[subprocess.Popen]] = []
        self.replica_addrs: List[str] = []
        self.replica_roots: List[str] = []
        self.worker_procs: List[subprocess.Popen] = []
        self.server: Optional[subprocess.Popen] = None
        self.fabric_addr: Optional[str] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.final_stats: Optional[Dict] = None
        self.fault_log: List[Dict] = []
        self._stall_release = threading.Event()
        self._log_handles: List[IO] = []

    # ------------------------------------------------------------- spawning
    def _log(self, name: str) -> IO:
        handle = open(os.path.join(self.log_dir, f"{name}.log"), "w")
        self._log_handles.append(handle)
        return handle

    def _spawn(self, args: Sequence[str], log_name: str) -> subprocess.Popen:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            env=self.env, stdout=subprocess.PIPE,
            stderr=self._log(log_name), text=True,
        )

    def _start_replica(
        self, index: int, port: int = 0, extra: Sequence[str] = ()
    ) -> Tuple[Optional[subprocess.Popen], Optional[str]]:
        root = self.replica_roots[index]
        proc = self._spawn(
            ["store", "serve", "--root", root, "--port", str(port), *extra],
            f"replica-{index}",
        )
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            return None, None
        return proc, json.loads(line)["serving"]

    def store_spec(self) -> str:
        scenario = self.scenario
        if scenario.replicas > 1:
            routes = "|".join(self.replica_addrs)
            return (
                f"remote://{routes}?w=majority&retries=2&backoff=0.05&cap=0.2"
            )
        return os.path.join(self.run_dir, "store")

    def _warm_store(self, spec: str) -> None:
        """Pre-measurement store state: batch-compile the mix's programs
        (all of them for ``warm``, the first half for ``mixed``)."""
        names, _ = self.scenario.programs_and_weights()
        unique = list(dict.fromkeys(names))
        if self.scenario.store_state == "mixed":
            unique = unique[: max(1, len(unique) // 2)]
        args = ["batch", *unique, "--store", spec, "--workers", "2",
                "--backend", "thread", "--json"]
        if spec == os.path.join(self.run_dir, "store") and self.scenario.shards > 1:
            args += ["--shards", str(self.scenario.shards)]
        warm = self._spawn(args, "warmup")
        out, _ = warm.communicate(timeout=600)
        if warm.returncode != 0:
            raise RuntimeError(
                f"store warmup batch failed with exit {warm.returncode}"
            )
        with open(os.path.join(self.run_dir, "warmup.json"), "w") as handle:
            handle.write(out)

    def __enter__(self) -> "ScenarioHarness":
        scenario = self.scenario
        try:
            if scenario.replicas > 1:
                for index in range(scenario.replicas):
                    self.replica_roots.append(
                        os.path.join(self.run_dir, f"replica-{index}")
                    )
                    proc, addr = self._start_replica(index)
                    if proc is None:
                        raise RuntimeError(f"replica {index} failed to start")
                    self.replica_procs.append(proc)
                    self.replica_addrs.append(addr)
            spec = self.store_spec()
            if scenario.store_state in ("warm", "mixed"):
                self._warm_store(spec)

            serve = ["serve", "--store", spec, "--async", "--port", "0"]
            if scenario.replicas == 1 and scenario.shards > 1:
                serve += ["--shards", str(scenario.shards)]
            if scenario.fabric:
                serve += ["--workers", "remote"]
            else:
                serve += ["--workers", str(scenario.workers)]
            if scenario.max_queue is not None:
                serve += ["--max-queue", str(scenario.max_queue)]
            self.server = self._spawn(serve, "server")
            if scenario.fabric:
                self.fabric_addr = json.loads(
                    self.server.stdout.readline()
                )["workers"]
            address = json.loads(self.server.stdout.readline())["serving"]
            host, port = address.rsplit(":", 1)
            self.host, self.port = host, int(port)

            if scenario.fabric:
                for index in range(scenario.workers):
                    self.worker_procs.append(self._spawn(
                        ["worker", "--connect", self.fabric_addr],
                        f"worker-{index}",
                    ))
        except BaseException:
            self._cleanup()
            raise
        return self

    # --------------------------------------------------------------- faults
    def start_faults(self, measure_start: float) -> List[threading.Thread]:
        threads = []
        for fault in self.scenario.faults:
            thread = threading.Thread(
                target=self._run_fault, args=(fault, measure_start),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        return threads

    def _note(self, fault: FaultSpec, event: str) -> None:
        self.fault_log.append({
            "kind": fault.kind, "event": event,
            "at_monotonic": time.monotonic(),
        })

    def _run_fault(self, fault: FaultSpec, measure_start: float) -> None:
        delay = measure_start + fault.at_s - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        if fault.kind == "kill_replica":
            self._fault_kill_replica(fault)
        elif fault.kind == "churn_worker":
            self._fault_churn_worker(fault)
        else:
            self._fault_stall_worker(fault)

    def _fault_kill_replica(self, fault: FaultSpec) -> None:
        # Kill replica 0 — the ordered-failover read preference — so the
        # run table's failovers column shows the reads that skipped it.
        victim = self.replica_procs[0]
        if victim is None or victim.poll() is not None:
            return
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        self._note(fault, "killed replica-0")
        time.sleep(fault.duration_s)
        port = int(self.replica_addrs[0].rsplit(":", 1)[1])
        peers = ",".join(self.replica_addrs[1:])
        # The revived replica heals itself: anti-entropy against the
        # survivor(s), no operator repair — the PR 6 contract under load.
        for _ in range(40):
            proc, addr = self._start_replica(
                0, port,
                ("--anti-entropy-interval", "1.0", "--peers", peers),
            )
            if proc is not None:
                self.replica_procs[0] = proc
                self.replica_addrs[0] = addr
                self._note(fault, "revived replica-0 with anti-entropy")
                return
            time.sleep(0.25)
        self._note(fault, "revive failed: port never rebound")

    def _fault_churn_worker(self, fault: FaultSpec) -> None:
        victim = self.worker_procs[0]
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
        self._note(fault, "killed worker-0")
        time.sleep(fault.duration_s)
        self.worker_procs.append(self._spawn(
            ["worker", "--connect", self.fabric_addr],
            f"worker-churned-{len(self.worker_procs)}",
        ))
        self._note(fault, "enrolled replacement worker")

    def _fault_stall_worker(self, fault: FaultSpec) -> None:
        """Enroll as a solver, accept one part, never answer — the
        scheduler must steal the stalled queue / reassign the in-flight
        part (the test_service_scheduler stall pattern, live)."""
        host, port = self.fabric_addr.rsplit(":", 1)
        try:
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.settimeout(max(fault.duration_s, 1.0))
                with sock.makefile("rwb") as stream:
                    stream.write(b'{"op": "hello"}\n')
                    stream.flush()
                    self._note(fault, "stalled worker enrolled")
                    try:
                        stream.readline()  # accept one part...
                        self._note(fault, "stalled worker holds a part")
                        self._stall_release.wait(fault.duration_s)
                    except socket.timeout:
                        pass  # ...or never get one: idle stall
        except OSError:
            self._note(fault, "stall enroll failed (fabric gone?)")
            return
        self._note(fault, "stalled worker released (disconnect)")

    # -------------------------------------------------------------- queries
    def stats(self) -> Dict:
        return server_stats(self.host, self.port)

    def fabric_snapshot(self) -> Dict:
        if not self.fabric_addr:
            return {}
        from repro.service.remote import RemoteUnavailable, fabric_stats

        try:
            return fabric_stats(self.fabric_addr, timeout_s=10.0)
        except RemoteUnavailable:
            return {}

    # ------------------------------------------------------------- teardown
    def stop_server(self, timeout_s: float = 120.0) -> Optional[Dict]:
        """SIGTERM the front door and capture its closing snapshot: the
        satellite contract — graceful drain + flush + ``final_stats`` on
        SIGTERM, not just SIGINT/shutdown."""
        if self.server is None or self.server.poll() is not None:
            return self.final_stats
        self._stall_release.set()
        self.server.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout_s
        for line in self.server.stdout:
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if "final_stats" in payload:
                self.final_stats = payload["final_stats"]
            if time.monotonic() > deadline:
                break
        self.server.wait(timeout=timeout_s)
        return self.final_stats

    def _cleanup(self) -> None:
        self._stall_release.set()
        if self.server is not None and self.server.poll() is None:
            self.server.kill()
            self.server.wait()
        for proc in self.worker_procs:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        for proc in self.replica_procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        for handle in self._log_handles:
            try:
                handle.close()
            except OSError:
                pass

    def __exit__(self, *exc_info) -> None:
        self._cleanup()


# --------------------------------------------------------------- run table
class RunTable:
    """Append-only ``run_table.csv`` writer (header written once)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, row: Dict) -> None:
        missing = set(RUN_TABLE_COLUMNS) - set(row)
        if missing:
            raise ValueError(f"run table row missing columns: {sorted(missing)}")
        new = not os.path.exists(self.path)
        os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
        with open(self.path, "a", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=list(RUN_TABLE_COLUMNS), extrasaction="ignore"
            )
            if new:
                writer.writeheader()
            writer.writerow(row)

    def rows(self) -> List[Dict]:
        with open(self.path, newline="") as handle:
            return [dict(row) for row in csv.DictReader(handle)]


def metrics_row(
    scenario: Scenario,
    run: int,
    rep: int,
    traffic: TrafficResult,
    stats_before: Optional[Dict] = None,
    stats_after: Optional[Dict] = None,
    fabric_before: Optional[Dict] = None,
    fabric_after: Optional[Dict] = None,
) -> Dict:
    """One run table row from the client-side result + server counters."""
    store_delta: Dict[str, float] = {}
    top_delta: Dict[str, float] = {}
    if stats_before is not None and stats_after is not None:
        store_delta = _counters_delta(
            stats_before.get("store", {}), stats_after.get("store", {})
        )
        top_delta = _counters_delta(stats_before, stats_after)
    fabric_delta: Dict[str, float] = {}
    if fabric_before is not None and fabric_after is not None:
        fabric_delta = _counters_delta(fabric_before, fabric_after)
    latencies = traffic.latencies_ms
    duration = max(traffic.duration_s, 1e-9)
    row = {
        "scenario": scenario.name,
        "run": run,
        "rep": rep,
        "arrival": scenario.arrival,
        "store_state": scenario.store_state,
        "clients": scenario.clients,
        "shards": scenario.shards,
        "workers": scenario.workers,
        "replicas": scenario.replicas,
        "duration_s": round(traffic.duration_s, 3),
        "requests": traffic.requests,
        "ok": traffic.ok,
        "errors": traffic.errors,
        "sheds": traffic.sheds,
        "wrong_answers": traffic.wrong_answers,
        "throughput_rps": round(traffic.ok / duration, 4),
        "p50_latency_ms": round(percentile(latencies, 50), 3) if latencies else 0.0,
        "p95_latency_ms": round(percentile(latencies, 95), 3) if latencies else 0.0,
        "p99_latency_ms": round(percentile(latencies, 99), 3) if latencies else 0.0,
        "mean_latency_ms": (
            round(sum(latencies) / len(latencies), 3) if latencies else 0.0
        ),
        "iterations": traffic.iterations,
        "solves": int(store_delta.get("puts", 0)),
        "store_hits": int(store_delta.get("hits", 0)),
        "store_misses": int(store_delta.get("misses", 0)),
        "coalesced": int(top_delta.get("coalesced", 0)),
        "failovers": int(store_delta.get("failovers", 0)),
        "degraded": int(store_delta.get("degraded", 0)),
        "quorum_failures": int(store_delta.get("quorum_failures", 0)),
        "steals": int(fabric_delta.get("n_steals", 0)),
        "reassignments": int(fabric_delta.get("n_reassigned", 0)),
        "error_rate": (
            round(traffic.errors / traffic.requests, 6) if traffic.requests else 0.0
        ),
        "shed_rate": (
            round(traffic.sheds / traffic.requests, 6) if traffic.requests else 0.0
        ),
    }
    return row


def run_scenario(
    scenario: Scenario,
    out_dir: str,
    run: int = 0,
    rep: int = 0,
    connect: Optional[Tuple[str, int]] = None,
    run_table: Optional[RunTable] = None,
) -> Dict:
    """One run × repetition: orchestrate (or connect), drive, record.

    Returns the run-table row; also appends it to ``run_table`` (default:
    ``<out_dir>/run_table.csv``) and writes the raw evidence to
    ``<out_dir>/run_<run>_rep_<rep>/perf.json``.
    """
    if run_table is None:
        run_table = RunTable(os.path.join(out_dir, "run_table.csv"))
    run_dir = os.path.join(out_dir, f"run_{run}_rep_{rep}")
    os.makedirs(run_dir, exist_ok=True)

    if connect is not None:
        if scenario.faults:
            raise ValueError(
                "fault injection needs harness orchestration; "
                "--connect drives an existing server it must not kill"
            )
        host, port = connect
        stats_before = server_stats(host, port)
        traffic = drive(host, port, scenario)
        stats_after = server_stats(host, port)
        fabric_before = fabric_after = None
        final_stats = None
        fault_log: List[Dict] = []
    else:
        with ScenarioHarness(scenario, run_dir) as harness:
            stats_before = harness.stats()
            fabric_before = harness.fabric_snapshot()
            harness.start_faults(time.monotonic())
            traffic = drive(harness.host, harness.port, scenario)
            stats_after = harness.stats()
            fabric_after = harness.fabric_snapshot()
            final_stats = harness.stop_server()
            fault_log = harness.fault_log
        host, port = None, None

    row = metrics_row(
        scenario, run, rep, traffic,
        stats_before, stats_after, fabric_before, fabric_after,
    )
    run_table.append(row)
    perf = {
        "scenario": {
            **{f: getattr(scenario, f) for f in (
                "name", "arrival", "clients", "duration_s", "store_state",
                "shards", "workers", "fabric", "replicas", "seed",
            )},
            "mix": scenario.mix if isinstance(scenario.mix, str)
            else [list(pair) for pair in scenario.mix],
            "faults": [
                {"kind": f.kind, "at_s": f.at_s, "duration_s": f.duration_s}
                for f in scenario.faults
            ],
        },
        "row": row,
        "latencies_ms": [round(v, 3) for v in traffic.latencies_ms],
        "stats_before": stats_before,
        "stats_after": stats_after,
        "fabric_before": fabric_before,
        "fabric_after": fabric_after,
        "final_stats": final_stats,
        "fault_log": fault_log,
    }
    with open(os.path.join(run_dir, "perf.json"), "w") as handle:
        json.dump(perf, handle, sort_keys=True, indent=2)
    return row


# ------------------------------------------------------------- chain study
def run_chain_study(
    out_dir: str,
    reps: int = 2,
    n_programs: int = 6,
    run_table: Optional[RunTable] = None,
) -> List[Dict]:
    """The ROADMAP chain-mode study, through the harness's run table.

    Replays the small suite sequentially (one request per batch, serial
    backend — the paper's compilation regime) against a cold store under
    ``warm="store"`` (snapshot-seeded, store-coherent; the service
    default) vs ``warm="chain"`` (MST-parent chaining, paper Sec V-D).
    Each variant × repetition lands one ``chain-study/*`` row in the
    same ``run_table.csv``: ``iterations`` carries the optimizer work,
    the latency columns the per-request wall — the tradeoff is now a
    table, not an anecdote.
    """
    import shutil
    import tempfile

    from repro.service.service import CompileService
    from repro.service.store import PulseStore
    from repro.utils.config import PipelineConfig
    from repro.workloads.suite import small_suite

    if run_table is None:
        run_table = RunTable(os.path.join(out_dir, "run_table.csv"))
    os.makedirs(out_dir, exist_ok=True)
    programs = small_suite(n_programs)
    rows: List[Dict] = []
    for rep in range(reps):
        for run, warm in enumerate(("store", "chain")):
            scenario = Scenario(
                name=f"chain-study/{warm}", mix=[(p.name, 1.0) for p in programs],
                arrival="closed", clients=1, duration_s=3600.0,
                store_state="cold", shards=1, workers=1,
            )
            root = tempfile.mkdtemp(prefix=f"chain-{warm}-", dir=out_dir)
            service = CompileService(
                PulseStore(os.path.join(root, "store")),
                PipelineConfig(policy_name="map2b4l"),
                backend="serial", n_workers=1, warm=warm,
            )
            traffic = TrafficResult()
            start = time.monotonic()
            for program in programs:
                t0 = time.monotonic()
                report, batch = service.handle_request(program)
                traffic.requests += 1
                traffic.ok += 1
                traffic.latencies_ms.append((time.monotonic() - t0) * 1e3)
                traffic.iterations += batch.total_iterations
            traffic.duration_s = time.monotonic() - start
            stats = service.store.stats.to_dict()
            row = metrics_row(scenario, run, rep, traffic)
            row["solves"] = int(stats.get("puts", 0))
            row["store_hits"] = int(stats.get("hits", 0))
            row["store_misses"] = int(stats.get("misses", 0))
            run_table.append(row)
            rows.append(row)
            shutil.rmtree(root, ignore_errors=True)
    return rows


# --------------------------------------------------------------- SLO gates
@dataclass(frozen=True)
class SLOViolation:
    """One breached SLO check (duck-typed ``severity`` so the audit
    module's exit-code gating applies unchanged)."""

    severity: str
    key: str
    row_id: str
    message: str


#: slo.json keys -> (run-table column, direction, severity on breach).
#: "min_*" are floors (value must be >=), "max_*" ceilings (<=).
SLO_CHECKS: Dict[str, Tuple[str, str, str]] = {
    "min_throughput_rps": ("throughput_rps", "min", "error"),
    "max_p50_latency_ms": ("p50_latency_ms", "max", "error"),
    "max_p95_latency_ms": ("p95_latency_ms", "max", "error"),
    "max_p99_latency_ms": ("p99_latency_ms", "max", "error"),
    "max_mean_latency_ms": ("mean_latency_ms", "max", "error"),
    "max_error_rate": ("error_rate", "max", "error"),
    "max_shed_rate": ("shed_rate", "max", "warn"),
    "min_requests": ("requests", "min", "warn"),
    "max_wrong_answers": ("wrong_answers", "max", "critical"),
    "max_quorum_failures": ("quorum_failures", "max", "critical"),
}


def load_slo(path: str) -> Dict[str, float]:
    """Read and validate an slo.json: unknown keys are refused loudly
    (a typo'd gate that silently checks nothing is worse than no gate)."""
    with open(path) as handle:
        slo = json.load(handle)
    if not isinstance(slo, dict):
        raise ValueError("slo.json must be a JSON object")
    unknown = set(slo) - set(SLO_CHECKS)
    if unknown:
        raise ValueError(
            f"unknown SLO key(s) {sorted(unknown)}; known keys: "
            f"{sorted(SLO_CHECKS)}"
        )
    return {key: float(value) for key, value in slo.items()}


def evaluate_slo(rows: Sequence[Dict], slo: Dict[str, float]) -> List[SLOViolation]:
    """Every row is held to every configured check (a soak with one bad
    repetition fails: reps exist to catch flakes, not to average them
    away)."""
    violations: List[SLOViolation] = []
    for row in rows:
        row_id = f"{row['scenario']}#run{row['run']}rep{row['rep']}"
        for key, bound in slo.items():
            column, direction, severity = SLO_CHECKS[key]
            value = float(row[column])
            breached = value < bound if direction == "min" else value > bound
            if breached:
                op = "<" if direction == "min" else ">"
                violations.append(SLOViolation(
                    severity=severity, key=key, row_id=row_id,
                    message=(
                        f"{column}={value:g} {op} {key}={bound:g}"
                    ),
                ))
    return violations


def gate_exit_code(
    violations: Sequence[SLOViolation], fail_on: str = "error"
) -> int:
    """0 clean or below the gate; else the audit-style 1/4/5/6 band."""
    severity_rank(fail_on)  # validate the gate itself, loudly
    if not violations:
        return 0
    worst = max(violations, key=lambda v: severity_rank(v.severity)).severity
    if severity_rank(worst) < severity_rank(fail_on):
        return 0
    return EXIT_BY_SEVERITY[worst]


# --------------------------------------------------------------------- CLI
def cmd_loadgen(argv: Sequence[str]) -> int:
    """``repro loadgen``: run a scenario's reps, emit the run table, gate."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Load/soak harness: replay a traffic scenario against "
                    "repro serve --async, emit run_table.csv + per-run "
                    "perf JSON, gate on SLO floors.",
    )
    parser.add_argument(
        "--scenario", default=None,
        help=f"named scenario ({', '.join(sorted(SCENARIOS))}) or a "
             f".json spec file (fields = Scenario dataclass)",
    )
    parser.add_argument(
        "--chain-study", action="store_true",
        help="run the warm='chain' vs warm='store' study on the small "
             "suite instead of a traffic scenario (rows land in the same "
             "run table)",
    )
    parser.add_argument("--reps", type=int, default=1,
                        help="repetitions of the run (one row each)")
    parser.add_argument("--out", default="loadgen_out",
                        help="output directory: run_table.csv + run dirs")
    parser.add_argument(
        "--connect", default=None,
        help="host:port of an already-running repro serve --async: drive "
             "it instead of orchestrating a topology (no fault injection)",
    )
    parser.add_argument(
        "--gate", default=None,
        help="slo.json path: evaluate SLO floors over this invocation's "
             "rows; exit 0 clean/below --fail-on, else 1/4/5/6 by worst "
             "violation severity (audit-style)",
    )
    parser.add_argument(
        "--fail-on", dest="fail_on", choices=SEVERITIES, default="error",
        help="gate threshold (default: error)",
    )
    parser.add_argument("--duration", type=float, default=None,
                        help="override the scenario's duration_s")
    parser.add_argument("--clients", type=int, default=None,
                        help="override the scenario's client count")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario's RNG seed")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the rows (and violations) as JSON")
    args = parser.parse_args(argv)

    if args.chain_study == (args.scenario is not None):
        print("repro loadgen: need exactly one of --scenario / --chain-study",
              file=sys.stderr)
        return 2
    try:
        slo = load_slo(args.gate) if args.gate else None
        if args.chain_study:
            rows = run_chain_study(args.out, reps=args.reps)
        else:
            scenario = load_scenario(args.scenario)
            overrides = {}
            if args.duration is not None:
                overrides["duration_s"] = args.duration
            if args.clients is not None:
                overrides["clients"] = args.clients
            if args.seed is not None:
                overrides["seed"] = args.seed
            if overrides:
                scenario = replace(scenario, **overrides)
            connect = None
            if args.connect:
                host, port = args.connect.rsplit(":", 1)
                connect = (host, int(port))
            rows = [
                run_scenario(
                    scenario, args.out, run=0, rep=rep, connect=connect
                )
                for rep in range(args.reps)
            ]
    except (ValueError, OSError, RuntimeError, ConnectionError) as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 2

    violations = evaluate_slo(rows, slo) if slo else []
    if args.as_json:
        print(json.dumps({
            "rows": rows,
            "violations": [vars(v) for v in violations],
        }, sort_keys=True))
    else:
        _print_rows(rows)
        for violation in violations:
            print(f"  SLO {violation.severity}: {violation.row_id}: "
                  f"{violation.message}")
        if slo is not None and not violations:
            print("  SLO gate: clean")
    if slo is not None:
        return gate_exit_code(violations, args.fail_on)
    return 0


def _print_rows(rows: Sequence[Dict], out: Optional[IO[str]] = None) -> None:
    from repro.analysis.reporting import ascii_table

    out = sys.stdout if out is None else out
    headers = [
        "scenario", "rep", "arrival", "clients", "ok", "errors", "sheds",
        "wrong", "rps", "p50ms", "p95ms", "p99ms", "solves", "hits",
        "failovers", "quorum_fail", "steals",
    ]
    table_rows = [
        [
            row["scenario"], row["rep"], row["arrival"], row["clients"],
            row["ok"], row["errors"], row["sheds"], row["wrong_answers"],
            row["throughput_rps"], row["p50_latency_ms"],
            row["p95_latency_ms"], row["p99_latency_ms"], row["solves"],
            row["store_hits"], row["failovers"], row["quorum_failures"],
            row["steals"],
        ]
        for row in rows
    ]
    print(
        ascii_table(headers, table_rows,
                    f"repro loadgen — {len(rows)} run row(s)"),
        file=out,
    )


# ----------------------------------------------------- in-process serving
class InProcessServer:
    """An :class:`AsyncCompileServer` on a background thread's event loop.

    The tests' and benches' serving fixture: no subprocess, no PYTHONPATH
    games — build a :class:`CompileService`, ``start()`` returns the
    bound TCP port, ``stop()`` drains and joins. The loadgen client side
    (:func:`drive`, :func:`server_stats`) talks to it exactly as it
    would to a real ``repro serve --async`` process.
    """

    def __init__(self, service, **server_kwargs) -> None:
        self._service = service
        self._kwargs = server_kwargs
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._port: Optional[int] = None
        self._loop = None
        self._server = None
        self._error: Optional[BaseException] = None

    def start(self) -> int:
        import asyncio

        from repro.service.asyncserve import AsyncCompileServer

        def main() -> None:
            async def amain() -> None:
                self._server = AsyncCompileServer(self._service, **self._kwargs)
                self._loop = asyncio.get_running_loop()
                tcp = await self._server.start_tcp("127.0.0.1", 0)
                self._port = tcp.sockets[0].getsockname()[1]
                self._ready.set()
                async with tcp:
                    await self._server.stopping.wait()
                    await self._server.drain()
                    self._server.hang_up()
                await self._server.close()

            try:
                asyncio.run(amain())
            except BaseException as exc:  # surfaced by start()/stop()
                self._error = exc
                self._ready.set()

        self._thread = threading.Thread(target=main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60) or self._port is None:
            raise RuntimeError(f"in-process server never came up: {self._error}")
        return self._port

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server not started")
        return self._port

    def stop(self, timeout_s: float = 120.0) -> None:
        if self._loop is not None and self._server is not None:
            self._loop.call_soon_threadsafe(self._server.stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
        if self._error is not None:
            raise self._error
