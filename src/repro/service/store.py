"""Persistent pulse store: disk-backed, content-addressed, crash-safe.

Layout (all JSON, one directory per store)::

    <root>/
      manifest.json          # {"version": 1, "entries": {<keyhex>: meta}}
      entries/<keyhex>.json  # one LibraryEntry per file (entry_to_dict)

Entries are addressed by the canonical group key (matrix modulo global phase
and wire permutation), so the store inherits every :class:`PulseLibrary`
semantics — a stored pulse serves wire-permuted occurrences too. Writes are
atomic (temp file + ``os.replace`` in the same directory), and the manifest
is rewritten atomically after every mutation, so a crash mid-``put`` leaves
either the previous manifest (orphan entry file, harmless) or the new one
(entry file already durable). The manifest is versioned; loading a store
written by an incompatible layout raises :class:`StoreVersionError`.

The store keeps the full library in memory (entries are small), counts
hits/misses/puts/evictions in :class:`StoreStats`, and optionally bounds the
entry count with least-recently-used eviction. Recency (last ``get``/``put``
of the key) is bumped in memory and persisted at the next ``flush`` — every
``put(flush=True)`` and every service batch flushes, and ``repro serve``
flushes on exit, so LRU order survives restarts for any writer; a purely
read-only session that never flushes keeps its recency bumps to itself.

A manifest may carry an *engine fingerprint*: pulse latencies and waveforms
are only meaningful for the engine/run configuration that produced them, so
:meth:`PulseStore.claim_fingerprint` stamps the first writer's identity and
refuses a mismatching one (``StoreVersionError``) instead of silently
serving, say, modelled latencies to a GRAPE client.

Multiple live writers on one directory are supported in the append-only
sense: ``flush`` merges with the manifest on disk (foreign rows it does not
know are carried over verbatim) under an exclusive ``flock`` on
``<root>/.lock``, so concurrent processes cannot lose each other's
completed puts. ``max_entries`` eviction is per-writer advisory — an
eviction can be resurrected by a concurrent writer's flush. (On platforms
without ``fcntl`` the lock degrades to best-effort, i.e. single-writer.)
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
import tempfile
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Collection, Dict, Iterable, List, Optional, Sequence

try:
    import fcntl
except ImportError:  # non-POSIX: degrade to best-effort single-writer
    fcntl = None

from repro.core.cache import (
    CoverageReport,
    LibraryEntry,
    PulseLibrary,
    entry_from_dict,
    entry_to_dict,
)
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
ENTRIES_DIR = "entries"


class StoreVersionError(RuntimeError):
    """Manifest written by an incompatible store layout."""


# An eviction guard answers "which keys must not be evicted right now?" —
# the service wires the coalescer's in-flight claims in so an LRU eviction
# cannot delete the warm-start seed of a solve that is still running.
EvictionGuard = Callable[[], Collection[bytes]]


def key_digest(key: bytes) -> str:
    """Stable short address of a canonical group key.

    The canonical key is the full matrix byte string (hundreds of bytes), so
    files and manifest entries are addressed by its SHA-256 instead. The full
    key is recovered from the entry's gates on load.
    """
    return hashlib.sha256(key).hexdigest()


@dataclass
class StoreStats:
    """Cumulative counters for one store instance (not persisted)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _atomic_write_json(path: str, payload: Dict) -> None:
    """Write JSON durably: temp file in the target directory + rename."""
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


class StoreBackend(abc.ABC):
    """What the service layer needs from a pulse store — and nothing more.

    ``CompileService``, the executors, and the front doors talk only to this
    interface, so one logical store can be a single directory
    (:class:`PulseStore`), N key-digest-range shards
    (:class:`repro.service.sharding.ShardedStore`), or a store on another
    host (:class:`repro.service.remote.RemoteStore` speaking the
    ``repro store serve`` protocol — including a ShardedStore whose
    shards are themselves remote, the digest-range routing table). The
    contract every backend honors:

    * content addressing by canonical group key (wire-permuted occurrences
      of a stored group hit);
    * ``snapshot()`` is an independent, internally consistent
      :class:`PulseLibrary` copy — the frozen warm-seed source a batch
      plans and solves against;
    * ``put`` is durable before it returns; ``flush`` makes deferred
      manifest state (and recency bumps) visible to future (re)loads;
    * ``get_many``/``put_many`` are the batched spellings with identical
      per-key semantics — the service reads through them so a backend on
      the far side of a wire pays one round trip per host, not per key;
    * ``stats`` aggregates hit/miss/put/eviction counters for this
      instance (a sharded backend merges per-shard counters);
    * ``claim_fingerprint`` refuses to serve results produced under a
      different engine/run identity;
    * ``add_eviction_guard`` lets each owner veto LRU victims (in-flight
      warm-start seeds must survive until their batch resolves); guards
      compose — two services over one store both stay protected.
    """

    stats: StoreStats

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __contains__(self, group: GateGroup) -> bool: ...

    @abc.abstractmethod
    def keys(self) -> List[bytes]: ...

    @abc.abstractmethod
    def snapshot(self) -> PulseLibrary: ...

    @abc.abstractmethod
    def get_key(self, key: bytes) -> Optional[LibraryEntry]: ...

    @abc.abstractmethod
    def peek_key(self, key: bytes) -> Optional[LibraryEntry]: ...

    @abc.abstractmethod
    def put(self, entry: LibraryEntry, flush: bool = True) -> None: ...

    @abc.abstractmethod
    def flush(self) -> None: ...

    @abc.abstractmethod
    def coverage(self, groups: Sequence[GateGroup]) -> CoverageReport: ...

    @abc.abstractmethod
    def claim_fingerprint(self, fingerprint: str) -> None: ...

    @abc.abstractmethod
    def add_eviction_guard(self, guard: EvictionGuard) -> None: ...

    @abc.abstractmethod
    def revalidate(self, engine, budget: int) -> Dict[str, int]: ...

    def get(self, group: GateGroup) -> Optional[LibraryEntry]:
        """Entry for ``group`` (hit/miss counted, recency bumped)."""
        return self.get_key(group.key())

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[LibraryEntry]]:
        """Batched :meth:`get_key`: one result slot per key, in order.

        Accounting matches the per-key loop (each key counts a hit or a
        miss, hits bump recency). This default *is* that loop — local
        backends pay nothing for batching — but wire-crossing backends
        override it to answer the whole list in one round trip per host
        (``get_many`` on the store-server protocol), so a cold batch costs
        O(shards) read RPCs instead of O(keys).
        """
        return [self.get_key(key) for key in keys]

    def put_many(self, entries: Sequence[LibraryEntry], flush: bool = True) -> None:
        """Batched :meth:`put`: every entry durable before return.

        The default defers the manifest rewrite to one trailing
        :meth:`flush`; remote backends override it to ship the whole list
        in one ``put_many`` round trip per host.
        """
        for entry in entries:
            self.put(entry, flush=False)
        if flush:
            self.flush()

    def stats_by_shard(self) -> List[Dict[str, float]]:
        """Per-shard stats snapshots; a single directory is one 'shard'."""
        return [self.stats.to_dict()]

    def stats_by_replica(self) -> List[Dict[str, float]]:
        """Per-replica health rows; empty unless this backend replicates
        (see :meth:`repro.service.replication.ReplicatedStore.stats_by_replica`
        and the routed :class:`~repro.service.sharding.ShardedStore`, which
        annotates each row with its shard index)."""
        return []

    def fingerprints(self) -> List[str]:
        """Distinct engine-identity stamps this backend serves (sorted).

        A healthy store has at most one — every shard and replica was
        populated under the same engine/run configuration. More than one
        is *fingerprint drift* (mixed data that would serve wrong
        latencies), the critical finding the fleet auditor checks for.
        Unstamped parts contribute nothing; backends that cannot know
        (e.g. an unreachable remote) return what they can see.
        """
        return []


class PulseStore(StoreBackend):
    """Disk-backed :class:`PulseLibrary` with stats and bounded size.

    The in-memory library is the source of truth between ``put`` calls; disk
    is updated synchronously on every mutation (entry file first, manifest
    second), so two processes pointing at the same directory see each other's
    completed puts on (re)load but never a torn file.

    All public methods are thread-safe (one reentrant lock): concurrent
    batches share a service's store and put/flush/snapshot from different
    threads.
    """

    def __init__(
        self,
        root: str,
        max_entries: Optional[int] = None,
        perf: Optional[PerfRecorder] = None,
        stat_prefix: str = "store.",
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = str(root)
        self.max_entries = max_entries
        self.stats = StoreStats()
        self.perf = recorder_or_null(perf)
        # Shards of one logical store namespace their perf names
        # ("store.shard3.hits") so `repro perf` shows the per-shard split.
        self.stat_prefix = stat_prefix
        # EvictionGuard callables, bound methods wrapped in WeakMethod
        self._eviction_guards: List[object] = []
        self._lock = threading.RLock()
        self._library = PulseLibrary()
        self._recency: Dict[bytes, int] = {}  # key -> logical clock of last use
        self._clock = 0
        self._fingerprint: Optional[str] = None  # engine identity stamp
        self._tombstones: set = set()  # digests this writer evicted
        self._disk_lock_depth = 0  # reentrancy for the cross-process flock
        self._disk_fd = -1
        os.makedirs(os.path.join(self.root, ENTRIES_DIR), exist_ok=True)
        self._load_manifest()

    @contextmanager
    def _disk_lock(self):
        """Exclusive cross-process lock over this store directory.

        Serializes the manifest's read-merge-write and entry file
        create/unlink against other processes — without it two concurrent
        flushes are a lost-update race. Reentrant per store instance; the
        callers all hold ``self._lock``, which makes the depth counter safe.
        """
        if fcntl is None:
            yield
            return
        if self._disk_lock_depth == 0:
            self._disk_fd = os.open(
                os.path.join(self.root, ".lock"), os.O_CREAT | os.O_RDWR
            )
            fcntl.flock(self._disk_fd, fcntl.LOCK_EX)
        self._disk_lock_depth += 1
        try:
            yield
        finally:
            self._disk_lock_depth -= 1
            if self._disk_lock_depth == 0:
                fcntl.flock(self._disk_fd, fcntl.LOCK_UN)
                os.close(self._disk_fd)
                self._disk_fd = -1

    # ----------------------------------------------------------------- disk
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _entry_path(self, key: bytes) -> str:
        return os.path.join(self.root, ENTRIES_DIR, f"{key_digest(key)}.json")

    def _load_manifest(self) -> None:
        if not os.path.exists(self.manifest_path):
            return
        with self.perf.stage(self.stat_prefix + "read"):
            try:
                with open(self.manifest_path) as handle:
                    manifest = json.load(handle)
                if not isinstance(manifest, dict):
                    raise ValueError("manifest is not an object")
            except ValueError:
                # Truncated/corrupt manifest: the entry files are the
                # durable source of truth — rebuild the index from them.
                self._recover_from_entries()
                return
            version = manifest.get("version")
            if version != MANIFEST_VERSION:
                raise StoreVersionError(
                    f"store at {self.root!r} has manifest version {version!r}; "
                    f"this build reads version {MANIFEST_VERSION}"
                )
            self._fingerprint = manifest.get("fingerprint")
            for digest, meta in manifest.get("entries", {}).items():
                path = os.path.join(self.root, ENTRIES_DIR, f"{digest}.json")
                entry = self._read_entry(path, digest)
                if entry is None:
                    continue  # torn put or corrupt/foreign file
                key = entry.group.key()
                self._library.add(entry)
                self._recency[key] = int(meta.get("recency", 0))
        if self._recency:
            self._clock = max(self._recency.values())

    def _read_entry(self, path: str, digest: str) -> Optional[LibraryEntry]:
        """One entry file, digest-verified; ``None`` when missing/corrupt."""
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                entry = entry_from_dict(json.load(handle))
        except (ValueError, KeyError, TypeError):
            return None
        if key_digest(entry.group.key()) != digest:
            return None
        return entry

    def _recover_from_entries(self) -> None:
        """Rebuild the manifest by scanning ``entries/`` (corrupt manifest).

        Recency and the engine fingerprint are lost — the next service
        claim re-stamps the fingerprint, and LRU order restarts from zero.
        """
        entries_dir = os.path.join(self.root, ENTRIES_DIR)
        for name in sorted(os.listdir(entries_dir)):
            if not name.endswith(".json"):
                continue
            digest = name[: -len(".json")]
            entry = self._read_entry(os.path.join(entries_dir, name), digest)
            if entry is None:
                continue
            self._library.add(entry)
        self.flush()

    def flush(self) -> None:
        """Rewrite the manifest from in-memory state, merged with disk.

        Rows on disk for digests this writer does not know (a concurrent
        process's puts) are carried over verbatim — their entry files are
        already durable, so the union is always loadable. Atomic rewrite.
        """
        with self._lock, self._disk_lock():
            entries: Dict[str, Dict] = {}
            if os.path.exists(self.manifest_path):
                try:
                    with open(self.manifest_path) as handle:
                        on_disk = json.load(handle)
                    if on_disk.get("version") == MANIFEST_VERSION:
                        entries.update(on_disk.get("entries", {}))
                except (OSError, ValueError):
                    pass  # a torn/corrupt manifest is rebuilt from memory
            for key in list(self._library.keys()):
                entry = self._library.lookup_key(key)
                entries[key_digest(key)] = {
                    "latency": entry.latency,
                    "iterations": entry.iterations,
                    "converged": entry.converged,
                    "n_qubits": entry.group.n_qubits,
                    "recency": self._recency.get(key, 0),
                }
            for digest in self._tombstones:
                entries.pop(digest, None)
            payload = {"version": MANIFEST_VERSION, "entries": entries}
            if self._fingerprint is not None:
                payload["fingerprint"] = self._fingerprint
            with self.perf.stage(self.stat_prefix + "write"):
                _atomic_write_json(self.manifest_path, payload)
            # A tombstone is spent once recorded: keeping it would delete a
            # concurrent writer's later re-put of the same key on the next
            # merge, losing their completed work.
            self._tombstones.clear()

    def claim_fingerprint(self, fingerprint: str) -> None:
        """Stamp (or validate) the engine identity this store serves.

        The first claimant writes the stamp; a later claimant with a
        different fingerprint is refused — its latencies/pulses would be
        silently wrong for the engine that populated the store.
        """
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = str(fingerprint)
                self.flush()
                return
            if self._fingerprint != str(fingerprint):
                raise StoreVersionError(
                    f"store at {self.root!r} was populated under engine "
                    f"fingerprint {self._fingerprint!r}; refusing "
                    f"{fingerprint!r} — use a separate store directory "
                    f"per engine/run configuration"
                )

    # ------------------------------------------------------------------ api
    def __len__(self) -> int:
        with self._lock:
            return len(self._library)

    def __contains__(self, group: GateGroup) -> bool:
        with self._lock:
            return group in self._library

    def keys(self) -> List[bytes]:
        with self._lock:
            return list(self._library.keys())

    def fingerprints(self) -> List[str]:
        with self._lock:
            return [self._fingerprint] if self._fingerprint else []

    def library(self) -> PulseLibrary:
        """The live in-memory library view (shared, do not mutate)."""
        return self._library

    def snapshot(self) -> PulseLibrary:
        """An independent library copy (a batch's frozen warm-seed source)."""
        with self._lock:
            copy = PulseLibrary()
            copy.merge(self._library)
            return copy

    def add_eviction_guard(self, guard: EvictionGuard) -> None:
        """Protect a dynamic key set from LRU eviction (see module doc).

        Guards accumulate — every service sharing this store instance
        registers its own, and a victim must be clear of all of them. A
        bound method (the usual case: a coalescer's ``in_flight_keys``) is
        held through a weak reference, so a service that is garbage
        collected does not pin its coalescer or slow eviction forever;
        plain functions/lambdas are held strongly.
        """
        with self._lock:
            try:
                self._eviction_guards.append(weakref.WeakMethod(guard))
            except TypeError:  # not a bound method
                self._eviction_guards.append(guard)

    def peek_key(self, key: bytes) -> Optional[LibraryEntry]:
        """Lookup without hit/miss accounting or a recency bump (planning)."""
        with self._lock:
            return self._library.lookup_key(key)

    def get_key(self, key: bytes) -> Optional[LibraryEntry]:
        """Entry by raw canonical key (same stats accounting as ``get``)."""
        with self._lock:
            entry = self._library.lookup_key(key)
            if entry is None:
                self.stats.misses += 1
                self.perf.count(self.stat_prefix + "misses")
                return None
            self.stats.hits += 1
            self.perf.count(self.stat_prefix + "hits")
            self._touch(key)
            return entry

    def put(self, entry: LibraryEntry, flush: bool = True) -> None:
        """Persist one entry (atomic entry file, then manifest), maybe evict.

        ``flush=False`` defers the manifest rewrite — the entry file is
        still durable immediately, but the entry only becomes visible to a
        future (re)load after the next :meth:`flush`. Batch writers use this
        to pay one manifest rewrite per batch instead of one per entry; the
        recovery semantics are unchanged (an unflushed entry file is the
        same harmless orphan a crash mid-``put`` leaves).
        """
        key = entry.group.key()
        with self._lock, self._disk_lock():
            with self.perf.stage(self.stat_prefix + "write"):
                _atomic_write_json(self._entry_path(key), entry_to_dict(entry))
            self._library.add(entry)
            self._tombstones.discard(key_digest(key))
            self._touch(key)
            self.stats.puts += 1
            self.perf.count(self.stat_prefix + "puts")
            if self.max_entries is not None:
                while len(self._library) > self.max_entries:
                    if not self._evict_lru(protect=key):
                        break  # everything left is in-flight; stay over bound
            if flush:
                self.flush()

    def coverage(self, groups: Sequence[GateGroup]) -> CoverageReport:
        """Library coverage (no hit/miss accounting: this is planning)."""
        with self._lock:
            return self._library.coverage(groups)

    def revalidate(self, engine, budget: int) -> Dict[str, int]:
        """Retrain non-converged entries until ``budget`` iterations are spent.

        The idle-time hygiene pass: entries whose solve never reached the
        target infidelity are re-run (warm-started from their own stored
        pulse, same deterministic seed tag as the original service solve)
        against ``engine`` — typically one configured with a bigger
        iteration budget than the serving path. Each retrain replaces the
        stored entry; ``budget`` caps the total iterations spent so the
        pass fits in an idle window. Returns a summary dict
        (``retrained``/``converged``/``iterations``/``remaining``).
        """
        from repro.core.engines import compile_with_engine
        from repro.service.executor import seed_tag_for

        with self._lock:
            candidates = sorted(
                (e for e in self._library.entries() if not e.converged),
                key=lambda e: key_digest(e.group.key()),
            )
        spent = retrained = converged = 0
        for entry in candidates:
            if spent >= budget:
                break
            record = compile_with_engine(
                engine,
                entry.group,
                warm_pulse=entry.pulse,
                warm_source=entry.group,
                seed_tag=seed_tag_for(entry.group),
            )
            spent += record.iterations
            retrained += 1
            if record.converged:
                converged += 1
            self.put(
                LibraryEntry(
                    group=entry.group,
                    pulse=record.pulse,
                    latency=record.latency,
                    iterations=entry.iterations + record.iterations,
                    converged=record.converged,
                ),
                flush=False,
            )
        if retrained:
            self.flush()
        return {
            "retrained": retrained,
            "converged": converged,
            "iterations": spent,
            "remaining": len(candidates) - retrained,
        }

    # ----------------------------------------------------------------- impl
    def _touch(self, key: bytes) -> None:
        self._clock += 1
        self._recency[key] = self._clock

    def _evict_lru(self, protect: bytes) -> bool:
        """Evict the coldest unprotected key; False when none is evictable.

        Protected means the entry being written *or* any key the eviction
        guard reports in flight: evicting a claimed key mid-batch would
        delete the warm-start seed (and the just-salvaged entry) of a solve
        another batch is still waiting on.
        """
        protected = {protect}
        alive = []
        for item in self._eviction_guards:
            guard = item() if isinstance(item, weakref.WeakMethod) else item
            if guard is None:
                continue  # owner collected: drop the stale guard
            alive.append(item)
            protected.update(guard())
        self._eviction_guards = alive
        victims = [k for k in self._library.keys() if k not in protected]
        if not victims:
            return False
        victim = min(victims, key=lambda k: self._recency.get(k, 0))
        self._library.remove(victim)
        self._recency.pop(victim, None)
        self._tombstones.add(key_digest(victim))
        path = self._entry_path(victim)
        if os.path.exists(path):
            os.unlink(path)
        self.stats.evictions += 1
        self.perf.count(self.stat_prefix + "evictions")
        return True
