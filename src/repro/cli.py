"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list                    # available experiments
    python -m repro fig15                   # run one experiment
    python -m repro fig8 --mode grape       # real-optimizer variants
    python -m repro all                     # the full evaluation section
    python -m repro perf                    # hot-path timings + breakdown
    python -m repro perf --json             # same, machine-readable
    python -m repro batch qft_16 ex2 --store /tmp/pulses   # batch service
    python -m repro serve --store /tmp/pulses              # JSON-lines loop
    python -m repro serve --store /tmp/pulses --async --port 0  # asyncio server
    python -m repro store stats --store /tmp/pulses        # store admin
    python -m repro store reshard --store /tmp/pulses --shards 4
    python -m repro store serve --root /tmp/pulses --port 7777  # store server
    python -m repro serve --store remote://db:7777 --workers remote --async
    python -m repro serve --store /tmp/pulses --workers remote --async \\
        --parts-per-worker 2 --fabric-policy steal --max-queue 64
    python -m repro worker --connect solver:7778 --stats  # fabric occupancy
    python -m repro serve --store "remote://db1:7777|db2:7777"  # 2 replicas
    python -m repro batch qft_16 --store "remote://db1:7777|db2:7777?w=majority"
    python -m repro store serve --root /data/ra --port 7401 \\
        --anti-entropy-interval 5 --peers db2:7401  # self-healing replica
    python -m repro store stats --store "remote://db1:7777|db2:7777" --json
    python -m repro store repair --store "remote://db1:7777|db2:7777"
    python -m repro store audit --store "remote://db1:7777|db2:7777" --json
    python -m repro store audit --store /tmp/pulses --fail-on warn
    python -m repro store audit --store /tmp/pulses --fabric solver:7778
    python -m repro dashboard --store "remote://db1:7777|db2:7777"  # live page
    python -m repro dashboard --store /tmp/x --fabric solver:7778  # + workers
    python -m repro worker --connect solver:7778           # remote solver
    python -m repro loadgen --scenario smoke --reps 2 --out /tmp/lg  # run table
    python -m repro loadgen --scenario smoke-replica-kill \\
        --gate slo/loadgen-smoke.json --fail-on error      # SLO-gated chaos run
    python -m repro loadgen --chain-study --reps 2 --out /tmp/lg  # warm modes
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.analysis import (
    fig5_crosstalk_error,
    fig7_coverage,
    fig8_similarity_iteration_reduction,
    fig11_crosstalk_mapping,
    fig12_latency_policies,
    fig13_per_program_iteration_reduction,
    fig14_group_growth,
    fig15_accqoc_vs_brute,
    sec2e_numbers,
    table1_policies,
    table2_instruction_mixes,
)
from repro.analysis.reporting import ascii_table

EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1_policies,
    "table2": table2_instruction_mixes,
    "fig5": fig5_crosstalk_error,
    "fig7": fig7_coverage,
    "fig8": fig8_similarity_iteration_reduction,
    "fig11": fig11_crosstalk_mapping,
    "fig12": fig12_latency_policies,
    "fig13": fig13_per_program_iteration_reduction,
    "fig14": fig14_group_growth,
    "fig15": fig15_accqoc_vs_brute,
    "sec2e": sec2e_numbers,
}

_MODE_AWARE = {"fig8", "fig13"}


def _run(name: str, mode: str) -> None:
    driver = EXPERIMENTS[name]
    result = driver(mode=mode) if name in _MODE_AWARE else driver()
    print(ascii_table(result.headers, result.rows(), result.name))
    for key, value in result.summary.items():
        print(f"  {key}: {value:.4g}")
    print()


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Service subcommands parse their own flags (repro serve/batch --store ...).
    if argv and argv[0] in (
        "serve", "batch", "store", "worker", "dashboard", "loadgen"
    ):
        if argv[0] == "loadgen":
            from repro.service.loadgen import cmd_loadgen

            return cmd_loadgen(argv[1:])
        from repro.service.frontdoor import (
            cmd_batch,
            cmd_dashboard,
            cmd_serve,
            cmd_store,
            cmd_worker,
        )

        handler = {
            "serve": cmd_serve,
            "batch": cmd_batch,
            "store": cmd_store,
            "worker": cmd_worker,
            "dashboard": cmd_dashboard,
        }[argv[0]]
        return handler(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AccQOC reproduction: regenerate paper tables/figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', 'list', 'perf', "
             "'serve', 'batch', 'store', 'worker', 'dashboard', 'loadgen'",
    )
    parser.add_argument(
        "--mode",
        choices=("model", "grape"),
        default="model",
        help="engine for iteration-count experiments (fig8/fig13)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (perf only)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        print("perf")
        print("serve")
        print("batch")
        print("store")
        print("worker")
        print("dashboard")
        print("loadgen")
        return 0
    if args.experiment == "perf":
        from repro.perf.hotpaths import run_perf

        print(run_perf(as_json=args.json))
        return 0
    if args.experiment == "all":
        for name in EXPERIMENTS:
            _run(name, args.mode)
        return 0
    if args.experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; try 'list'"
        )
    _run(args.experiment, args.mode)
    return 0


if __name__ == "__main__":
    sys.exit(main())
