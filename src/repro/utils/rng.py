"""Deterministic random-number management.

Every stochastic component (synthetic calibration data, random benchmark
programs, GRAPE cold-start noise) derives its generator from a root seed plus
a string tag, so experiments are reproducible end to end while components stay
statistically independent.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20200301  # arXiv submission date of the paper, 2020-03-01.


def derive_rng(tag: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a Generator keyed by ``(seed, tag)``.

    The tag is hashed so unrelated components cannot collide by accident
    (e.g. "worker1" vs seed+1 arithmetic).
    """
    digest = hashlib.sha256(f"{seed}:{tag}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)
