"""Configuration objects shared by the QOC engine and the pipeline.

The physical constants follow the paper where it states them (two-level spin
qubit at omega/2pi = 3.9 GHz, fidelity target 1e-4, Melbourne gate times) and
standard superconducting-control values elsewhere; see DESIGN.md for the
substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class PhysicsConfig:
    """Control model of the simulated device.

    Units: time in nanoseconds, angular frequencies in rad/ns (hbar = 1).
    The model is a rotating frame per qubit (drift removed by working at the
    qubit frequency), with bounded X/Y drives per qubit and a bounded tunable
    XX coupler between the two qubits of a group.
    """

    qubit_freq_ghz: float = 3.9  # omega/2pi of the two-level spin (paper Sec IV-D)
    drive_max: float = 2 * 3.141592653589793 * 0.030  # rad/ns, ~30 MHz X/Y drive
    coupling_max: float = 2 * 3.141592653589793 * 0.004  # rad/ns, ~4 MHz coupler
    dt: float = 2.0  # ns per GRAPE time slice
    # Buffer accounting for pulse rise/fall on real AWGs; added to estimates.
    single_qubit_buffer: float = 2.0  # ns

    @property
    def pi_pulse_time(self) -> float:
        """Minimal time of a pi rotation at full drive (angle = 2*u*t)."""
        return 3.141592653589793 / (2 * self.drive_max)

    def with_dt(self, dt: float) -> "PhysicsConfig":
        return replace(self, dt=dt)


@dataclass(frozen=True)
class RunConfig:
    """Optimization-budget knobs for GRAPE and the binary search."""

    target_infidelity: float = 1e-4  # paper: fidelity cost 1e-4
    max_iterations: int = 300  # per GRAPE solve
    time_budget_s: float = 600.0  # paper: 600 s per binary-search probe
    optimizer: str = "L-BFGS-B"  # paper uses BFGS; bounded variant by default
    binary_search_max_probes: int = 12
    cold_start_noise: float = 0.05  # fraction of drive_max for random init
    seed: int = 20200301
    # Opt-in cross-pulse batching: workers solve same-class groups through
    # one batched kernel stream (see qoc/grape_batched.py). Off by default —
    # the serial path is the bit-identity oracle. Deliberately NOT part of
    # the engine fingerprint: both paths honour the same target/budget, so
    # their stores interoperate (a serial-populated store warm-seeds a
    # batched engine and vice versa).
    batched_grape: bool = False
    # Opt-in class-aware partitioning: the batch planner packs
    # same-solve-class groups into the same part so the batched driver
    # sees wide buckets (core/partition.py's affinity term). A planning
    # preference only — pulse content is untouched — so, like
    # ``batched_grape``, deliberately NOT part of the engine fingerprint.
    class_partition: bool = False

    def fast(self) -> "RunConfig":
        """Scaled-down budget for tests and quick benches."""
        return replace(self, max_iterations=120, binary_search_max_probes=8)

    def batched(self) -> "RunConfig":
        """Same budget, cross-pulse batched GRAPE driver enabled."""
        return replace(self, batched_grape=True)

    def class_parts(self) -> "RunConfig":
        """Same budget, class-aware batch partitioning enabled."""
        return replace(self, class_partition=True)


@dataclass
class PipelineConfig:
    """End-to-end AccQOC pipeline settings."""

    policy_name: str = "map2b4l"
    profile_fraction: float = 1.0 / 3.0  # share of the suite used for profiling
    similarity: str = "fidelity1"  # best function per Fig 8
    optimize_most_frequent: bool = True
    n_workers: int = 4
    physics: PhysicsConfig = field(default_factory=PhysicsConfig)
    run: RunConfig = field(default_factory=RunConfig)
