"""Linear-algebra helpers used across the circuit, QOC and similarity layers.

Conventions
-----------
* Qubit 0 is the *least significant* bit of a computational-basis index:
  basis state ``|q_{n-1} ... q_1 q_0>`` has index ``sum_k q_k << k``.
* All unitaries are dense complex128 numpy arrays.
"""

from __future__ import annotations

import numpy as np

ATOL = 1e-9


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Conjugate transpose."""
    return matrix.conj().T


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True when ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(dagger(matrix) @ matrix, identity, atol=atol))


def kron_all(matrices) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right.

    ``kron_all([A, B])`` returns ``A (x) B`` so the *first* matrix acts on the
    most significant qubit.
    """
    out = np.array([[1.0 + 0.0j]])
    for matrix in matrices:
        out = np.kron(out, matrix)
    return out


def embed_unitary(gate_matrix: np.ndarray, qubits, n_qubits: int) -> np.ndarray:
    """Embed a k-qubit gate acting on ``qubits`` into an ``n_qubits`` space.

    ``qubits`` orders the gate's own wires: ``qubits[0]`` is the gate's qubit 0
    (least significant bit of the *gate* matrix index). Works for arbitrary,
    possibly non-adjacent and permuted wire assignments.
    """
    qubits = list(qubits)
    k = len(qubits)
    if gate_matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"gate on {k} qubits needs a {2 ** k}x{2 ** k} matrix, "
            f"got {gate_matrix.shape}"
        )
    if len(set(qubits)) != k:
        raise ValueError(f"duplicate qubits in {qubits}")
    if any(q < 0 or q >= n_qubits for q in qubits):
        raise ValueError(f"qubits {qubits} out of range for n={n_qubits}")

    dim = 2**n_qubits
    out = np.zeros((dim, dim), dtype=complex)
    rest = [q for q in range(n_qubits) if q not in qubits]
    # Iterate over the gate's subspace and the untouched subspace separately.
    for rest_bits in range(2 ** len(rest)):
        base = 0
        for pos, q in enumerate(rest):
            if (rest_bits >> pos) & 1:
                base |= 1 << q
        for col_local in range(2**k):
            col = base
            for pos, q in enumerate(qubits):
                if (col_local >> pos) & 1:
                    col |= 1 << q
            for row_local in range(2**k):
                amp = gate_matrix[row_local, col_local]
                if amp == 0:
                    continue
                row = base
                for pos, q in enumerate(qubits):
                    if (row_local >> pos) & 1:
                        row |= 1 << q
                out[row, col] = amp
    return out


def global_phase_normalize(matrix: np.ndarray) -> np.ndarray:
    """Remove the global phase: rotate so the largest-magnitude entry is real positive.

    Using the largest entry (instead of the first nonzero) makes the
    normalization numerically stable under small perturbations, which is what
    the dedup layer needs for hash keys.
    """
    matrix = np.asarray(matrix, dtype=complex)
    flat_index = int(np.argmax(np.abs(matrix)))
    pivot = matrix.flat[flat_index]
    if abs(pivot) < ATOL:
        return matrix.copy()
    phase = pivot / abs(pivot)
    return matrix / phase


def matrices_close(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7, up_to_phase: bool = True
) -> bool:
    """Compare two matrices, optionally modulo global phase.

    Phase alignment uses the inner product <a, b> (the optimal rotation of b
    onto a), not per-matrix pivot normalization: independent pivots can
    disagree between two nearly-equal matrices with tied entry magnitudes.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    if up_to_phase:
        inner = np.vdot(a, b)
        if abs(inner) > ATOL:
            b = b * (inner.conjugate() / abs(inner))
    return bool(np.allclose(a, b, atol=atol))


def random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-random unitary via QR decomposition of a complex Ginibre matrix."""
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    # Fix the phases so the distribution is Haar.
    d = np.diag(r)
    q = q * (d / np.abs(d))
    return q


def trace_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Phase-invariant process fidelity |Tr(U^dag V)|^2 / d^2 in [0, 1]."""
    d = u.shape[0]
    overlap = np.trace(dagger(u) @ v)
    return float(abs(overlap) ** 2 / d**2)
