"""Linear-algebra helpers used across the circuit, QOC and similarity layers.

Conventions
-----------
* Qubit 0 is the *least significant* bit of a computational-basis index:
  basis state ``|q_{n-1} ... q_1 q_0>`` has index ``sum_k q_k << k``.
* All unitaries are dense complex128 numpy arrays.
"""

from __future__ import annotations

import numpy as np

ATOL = 1e-9


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Conjugate transpose."""
    return matrix.conj().T


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True when ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(dagger(matrix) @ matrix, identity, atol=atol))


def kron_all(matrices) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right.

    ``kron_all([A, B])`` returns ``A (x) B`` so the *first* matrix acts on the
    most significant qubit.
    """
    out = np.array([[1.0 + 0.0j]])
    for matrix in matrices:
        out = np.kron(out, matrix)
    return out


def embed_unitary(gate_matrix: np.ndarray, qubits, n_qubits: int) -> np.ndarray:
    """Embed a k-qubit gate acting on ``qubits`` into an ``n_qubits`` space.

    ``qubits`` orders the gate's own wires: ``qubits[0]`` is the gate's qubit 0
    (least significant bit of the *gate* matrix index). Works for arbitrary,
    possibly non-adjacent and permuted wire assignments.

    Implemented as a tensor-index permutation: the gate (x) identity operator
    is viewed as a rank-2n tensor of qubit axes and transposed into the
    global wire order — no Python loop over basis states.
    """
    qubits = list(qubits)
    k = len(qubits)
    gate_matrix = np.asarray(gate_matrix)
    if gate_matrix.shape != (2**k, 2**k):
        raise ValueError(
            f"gate on {k} qubits needs a {2 ** k}x{2 ** k} matrix, "
            f"got {gate_matrix.shape}"
        )
    if len(set(qubits)) != k:
        raise ValueError(f"duplicate qubits in {qubits}")
    if any(q < 0 or q >= n_qubits for q in qubits):
        raise ValueError(f"qubits {qubits} out of range for n={n_qubits}")

    dim = 2**n_qubits
    rest = [q for q in range(n_qubits) if q not in qubits]
    n_rest = len(rest)
    # Reshaping a (2^m, 2^m) operator to (2,)*2m orders each index group
    # most-significant bit first: axis i of the row group is the operator's
    # qubit m-1-i, and likewise for the column group.
    gate_tensor = gate_matrix.astype(complex).reshape((2,) * (2 * k))
    if n_rest:
        rest_tensor = np.eye(2**n_rest, dtype=complex).reshape(
            (2,) * (2 * n_rest)
        )
        full = np.multiply.outer(gate_tensor, rest_tensor)
    else:
        full = gate_tensor
    # Source axis of each global qubit in `full`'s axis list
    # (gate rows, gate cols, rest rows, rest cols).
    row_axis = {}
    col_axis = {}
    for pos, q in enumerate(qubits):
        row_axis[q] = k - 1 - pos
        col_axis[q] = k + (k - 1 - pos)
    for pos, q in enumerate(rest):
        row_axis[q] = 2 * k + (n_rest - 1 - pos)
        col_axis[q] = 2 * k + n_rest + (n_rest - 1 - pos)
    perm = [row_axis[q] for q in reversed(range(n_qubits))]
    perm += [col_axis[q] for q in reversed(range(n_qubits))]
    return np.ascontiguousarray(full.transpose(perm).reshape(dim, dim))


def global_phase_normalize(matrix: np.ndarray) -> np.ndarray:
    """Remove the global phase: rotate so the largest-magnitude entry is real positive.

    Using the largest entry (instead of the first nonzero) makes the
    normalization numerically stable under small perturbations, which is what
    the dedup layer needs for hash keys.
    """
    matrix = np.asarray(matrix, dtype=complex)
    flat_index = int(np.argmax(np.abs(matrix)))
    pivot = matrix.flat[flat_index]
    if abs(pivot) < ATOL:
        return matrix.copy()
    phase = pivot / abs(pivot)
    return matrix / phase


def matrices_close(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7, up_to_phase: bool = True
) -> bool:
    """Compare two matrices, optionally modulo global phase.

    Phase alignment uses the inner product <a, b> (the optimal rotation of b
    onto a), not per-matrix pivot normalization: independent pivots can
    disagree between two nearly-equal matrices with tied entry magnitudes.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    if up_to_phase:
        inner = np.vdot(a, b)
        if abs(inner) > ATOL:
            b = b * (inner.conjugate() / abs(inner))
    return bool(np.allclose(a, b, atol=atol))


def random_unitary(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-random unitary via QR decomposition of a complex Ginibre matrix."""
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    # Fix the phases so the distribution is Haar.
    d = np.diag(r)
    q = q * (d / np.abs(d))
    return q


def trace_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """Phase-invariant process fidelity |Tr(U^dag V)|^2 / d^2 in [0, 1]."""
    d = u.shape[0]
    overlap = np.trace(dagger(u) @ v)
    return float(abs(overlap) ** 2 / d**2)
