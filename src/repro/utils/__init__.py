"""Shared utilities: linear algebra helpers, seeded RNG, configuration."""

from repro.utils.config import PhysicsConfig, RunConfig
from repro.utils.linalg import (
    dagger,
    embed_unitary,
    global_phase_normalize,
    is_unitary,
    kron_all,
    matrices_close,
    random_unitary,
)
from repro.utils.rng import derive_rng

__all__ = [
    "PhysicsConfig",
    "RunConfig",
    "dagger",
    "embed_unitary",
    "global_phase_normalize",
    "is_unitary",
    "kron_all",
    "matrices_close",
    "random_unitary",
    "derive_rng",
]
