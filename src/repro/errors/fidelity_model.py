"""Coherence vs gate error (paper Sec II-E) and program fidelity estimates.

The paper's motivating calculation: over one Melbourne CX (974.9 ns), the
decoherence error 1 - exp(-0.9749 us / 57.35 us) = 1.69e-2 is comparable to
the average CX gate error 2.46e-2 — hence latency reduction translates into
fidelity. This module reproduces that arithmetic and extends it to whole
programs, so the latency reductions of Fig 12/15 can be read as fidelity
gains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors.calibration import (
    CX_TIME_NS,
    MEAN_CX_ERROR,
    MEAN_T1_US,
    DeviceCalibration,
)


def coherence_error(duration_ns: float, t_us: float) -> float:
    """Probability of a decoherence event over ``duration_ns``: 1 - e^(-t/T)."""
    if duration_ns < 0:
        raise ValueError("duration must be non-negative")
    if t_us <= 0:
        raise ValueError("decoherence time must be positive")
    return 1.0 - math.exp(-(duration_ns / 1000.0) / t_us)


@dataclass(frozen=True)
class Sec2EResult:
    """The paper's side-by-side error comparison."""

    cx_time_ns: float
    t1_us: float
    coherence_error_per_cx: float
    gate_error_per_cx: float

    @property
    def comparable(self) -> bool:
        """Same order of magnitude — the paper's point."""
        ratio = self.coherence_error_per_cx / self.gate_error_per_cx
        return 0.1 <= ratio <= 10.0


def sec2e_error_balance(
    cx_time_ns: float = CX_TIME_NS,
    t1_us: float = MEAN_T1_US,
    gate_error: float = MEAN_CX_ERROR,
) -> Sec2EResult:
    """Reproduce Sec II-E: coherence error ~ 1.69e-2 vs gate error 2.46e-2."""
    return Sec2EResult(
        cx_time_ns=cx_time_ns,
        t1_us=t1_us,
        coherence_error_per_cx=coherence_error(cx_time_ns, t1_us),
        gate_error_per_cx=gate_error,
    )


def program_fidelity(
    latency_ns: float,
    n_two_qubit: int,
    n_single_qubit: int,
    calibration: Optional[DeviceCalibration] = None,
    single_qubit_error: float = 1e-3,
) -> float:
    """Coarse program fidelity: gate errors x whole-program decoherence.

    Fidelity = prod(1 - eps_g) * exp(-latency / T1_eff). Latency reduction
    improves only the second factor — exactly the trade the paper argues.
    """
    if calibration is not None:
        cx_error = calibration.mean_cx_error()
        t1 = sum(q.t1_us for q in calibration.qubits) / len(calibration.qubits)
    else:
        cx_error = MEAN_CX_ERROR
        t1 = MEAN_T1_US
    gate_factor = (1.0 - cx_error) ** n_two_qubit
    gate_factor *= (1.0 - single_qubit_error) ** n_single_qubit
    coherence_factor = math.exp(-(latency_ns / 1000.0) / t1)
    return gate_factor * coherence_factor


def fidelity_gain_from_latency(
    gate_based_latency_ns: float,
    qoc_latency_ns: float,
    t1_us: float = MEAN_T1_US,
) -> float:
    """Multiplicative fidelity improvement from a latency reduction."""
    saved_us = (gate_based_latency_ns - qoc_latency_ns) / 1000.0
    return math.exp(saved_us / t1_us)
