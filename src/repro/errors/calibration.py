"""Synthetic IBM Q Melbourne calibration data (paper Figs 5, Sec II-E).

Real backend calibration snapshots are not available offline; this module
generates a deterministic synthetic table anchored to every constant the
paper states: average T1 = 57.35 us, T2 = 61.82 us, CX duration 974.9 ns,
average CX error 2.46e-2, and ~20% error inflation when a nearby CNOT runs
in parallel (Sec II-E, IV-A). Per-pair/per-qubit variation is log-normal
jitter around those anchors, seeded for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.mapping.topology import melbourne
from repro.utils.rng import derive_rng

# Paper-stated anchors (Sec II-E).
MEAN_T1_US = 57.35
MEAN_T2_US = 61.82
CX_TIME_NS = 974.9
MEAN_CX_ERROR = 2.46e-2
CROSSTALK_INFLATION = 0.20  # ~20% higher error under a nearby CNOT (Fig 5)


@dataclass(frozen=True)
class QubitCalibration:
    qubit: int
    t1_us: float
    t2_us: float


@dataclass(frozen=True)
class PairCalibration:
    """CX error rates for one directed pair, isolated vs. with crosstalk."""

    pair: Tuple[int, int]
    error_isolated: float
    error_with_crosstalk: float

    @property
    def inflation(self) -> float:
        return self.error_with_crosstalk / self.error_isolated - 1.0


@dataclass
class DeviceCalibration:
    qubits: List[QubitCalibration]
    pairs: List[PairCalibration]

    def qubit(self, index: int) -> QubitCalibration:
        return self.qubits[index]

    def pair(self, a: int, b: int) -> PairCalibration:
        for entry in self.pairs:
            if set(entry.pair) == {a, b}:
                return entry
        raise KeyError(f"no calibration for pair ({a},{b})")

    def mean_cx_error(self) -> float:
        return float(np.mean([p.error_isolated for p in self.pairs]))

    def mean_inflation(self) -> float:
        return float(np.mean([p.inflation for p in self.pairs]))


def melbourne_calibration(seed: int = 20200301) -> DeviceCalibration:
    """Deterministic synthetic calibration for the Melbourne topology."""
    topo = melbourne()
    rng = derive_rng("melbourne-calibration", seed)
    qubits = []
    for q in range(topo.n_qubits):
        t1 = MEAN_T1_US * float(np.exp(rng.normal(0.0, 0.15)))
        t2 = MEAN_T2_US * float(np.exp(rng.normal(0.0, 0.15)))
        qubits.append(QubitCalibration(qubit=q, t1_us=t1, t2_us=min(t2, 2 * t1)))
    pairs = []
    for edge in topo.edges:
        base = MEAN_CX_ERROR * float(np.exp(rng.normal(0.0, 0.25)))
        inflation = CROSSTALK_INFLATION * float(np.exp(rng.normal(0.0, 0.3)))
        pairs.append(
            PairCalibration(
                pair=edge,
                error_isolated=base,
                error_with_crosstalk=base * (1.0 + inflation),
            )
        )
    return DeviceCalibration(qubits=qubits, pairs=pairs)


def fig5_pairs(calibration: DeviceCalibration, n_pairs: int = 6) -> List[PairCalibration]:
    """The six qubit pairs Fig 5 plots (first six edges, deterministic)."""
    return calibration.pairs[:n_pairs]
