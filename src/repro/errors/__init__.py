"""Error models: synthetic device calibration and fidelity accounting."""

from repro.errors.calibration import (
    CROSSTALK_INFLATION,
    CX_TIME_NS,
    MEAN_CX_ERROR,
    MEAN_T1_US,
    MEAN_T2_US,
    DeviceCalibration,
    PairCalibration,
    QubitCalibration,
    fig5_pairs,
    melbourne_calibration,
)
from repro.errors.fidelity_model import (
    Sec2EResult,
    coherence_error,
    fidelity_gain_from_latency,
    program_fidelity,
    sec2e_error_balance,
)

__all__ = [
    "CROSSTALK_INFLATION",
    "CX_TIME_NS",
    "MEAN_CX_ERROR",
    "MEAN_T1_US",
    "MEAN_T2_US",
    "DeviceCalibration",
    "PairCalibration",
    "QubitCalibration",
    "fig5_pairs",
    "melbourne_calibration",
    "Sec2EResult",
    "coherence_error",
    "fidelity_gain_from_latency",
    "program_fidelity",
    "sec2e_error_balance",
]
